package engine

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/obs"
)

// OpStats records the measured I/O of one operator execution.
type OpStats struct {
	Label     string
	Reads     int64 // block reads performed by the operator
	Writes    int64 // block writes of the operator's result
	OutRows   int
	OutBlocks int
}

// Result is an executed plan's output plus per-operator measurements.
type Result struct {
	Table *Table // anonymous result table
	Ops   []OpStats
}

// Rows materializes the result rows.
func (r *Result) Rows() [][]algebra.Value { return r.Table.materializeRows() }

// TotalReads sums block reads over all operators.
func (r *Result) TotalReads() int64 {
	var n int64
	for _, op := range r.Ops {
		n += op.Reads
	}
	return n
}

// TotalWrites sums block writes over all operators.
func (r *Result) TotalWrites() int64 {
	var n int64
	for _, op := range r.Ops {
		n += op.Writes
	}
	return n
}

// JoinAlgorithm selects the physical join operator.
type JoinAlgorithm int

// Physical join operators.
const (
	// JoinNestedLoop is the block nested-loop join the paper's cost model
	// assumes: blocks(outer) + blocks(outer)·blocks(inner) reads.
	JoinNestedLoop JoinAlgorithm = iota
	// JoinHash builds a hash table on the inner input: blocks(outer) +
	// blocks(inner) reads. Used to measure the hash-join ablation
	// physically.
	JoinHash
)

// SetJoinAlgorithm switches the physical join operator for subsequent
// executions.
func (db *DB) SetJoinAlgorithm(a JoinAlgorithm) { db.joinAlgo = a }

// ExecMode selects between the vectorized batch executor and the legacy
// row-at-a-time executor.
type ExecMode int

// Execution modes.
const (
	// ExecBatch runs operators batch-at-a-time over typed column vectors —
	// the default.
	ExecBatch ExecMode = iota
	// ExecRow runs the legacy row-at-a-time operators. Kept as the
	// reference build: the differential harness asserts the two modes
	// produce bit-identical results, operator stats, and journal state.
	ExecRow
)

// SetExecMode switches the executor for subsequent executions. Like
// SetJoinAlgorithm, not safe to call concurrently with Execute.
func (db *DB) SetExecMode(m ExecMode) { db.execMode = m }

// Execute runs a plan operator-at-a-time: every operator reads its stored
// input block by block and writes its result to a fresh temporary table,
// exactly as the paper's cost formulas assume. Scans resolve base tables
// and materialized views by name. The database counter accumulates across
// calls; per-operator numbers are returned in the Result.
func (db *DB) Execute(plan algebra.Node) (*Result, error) {
	if err := db.inj.Hit(fault.SiteEngineExecute); err != nil {
		return nil, err
	}
	if err := algebra.Validate(plan); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	res := &Result{}
	out, err := db.exec(plan, res)
	if err != nil {
		return nil, err
	}
	// A plan that is just a scan (e.g. a query answered entirely by one
	// materialized view) still costs one pass over the stored result.
	if s, ok := plan.(*algebra.Scan); ok {
		stats := OpStats{
			Label:     "read " + s.Relation,
			Reads:     int64(out.NumBlocks()),
			OutRows:   out.NumRows(),
			OutBlocks: out.NumBlocks(),
		}
		db.account(stats)
		res.Ops = append(res.Ops, stats)
	}
	res.Table = out
	return res, nil
}

// resolveRelation maps a scan's relation name to the current table: a
// materialized view's current epoch snapshot, or the base table. The DB
// lock is held only for the lookup; the returned table is immutable.
func (db *DB) resolveRelation(name string) (*Table, error) {
	db.mu.RLock()
	view, isView := db.views[name]
	t, isTable := db.tables[name]
	db.mu.RUnlock()
	if isView {
		return view.Table(), nil
	}
	if !isTable {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

func (db *DB) exec(n algebra.Node, res *Result) (*Table, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		return db.resolveRelation(v.Relation)
	case *algebra.Select:
		in, err := db.exec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.opSelect(v, in, res)
	case *algebra.Project:
		in, err := db.exec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.opProject(v, in, res)
	case *algebra.Join:
		left, err := db.exec(v.Left, res)
		if err != nil {
			return nil, err
		}
		right, err := db.exec(v.Right, res)
		if err != nil {
			return nil, err
		}
		return db.opJoin(v, left, right, res)
	case *algebra.Aggregate:
		in, err := db.exec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.opAggregate(v, in, res)
	default:
		return nil, fmt.Errorf("engine: cannot execute node type %T", n)
	}
}

// opSelect dispatches a selection to the active executor.
func (db *DB) opSelect(sel *algebra.Select, in *Table, res *Result) (*Table, error) {
	if db.execMode == ExecRow {
		return db.rowSelect(sel, in, res)
	}
	return db.batchSelect(sel, in, res)
}

// opProject dispatches a projection to the active executor.
func (db *DB) opProject(p *algebra.Project, in *Table, res *Result) (*Table, error) {
	if db.execMode == ExecRow {
		return db.rowProject(p, in, res)
	}
	return db.batchProject(p, in, res)
}

// opJoin dispatches a join to the active executor and join algorithm.
func (db *DB) opJoin(j *algebra.Join, left, right *Table, res *Result) (*Table, error) {
	if db.joinAlgo == JoinHash {
		if db.execMode == ExecRow {
			return db.rowHashJoin(j, left, right, res)
		}
		return db.batchHashJoin(j, left, right, res)
	}
	return db.opNLJoin(j, left, right, res)
}

// opNLJoin dispatches a block nested-loop join regardless of the
// configured join algorithm; the delta-propagation path always joins
// nested-loop (its cost formulas assume BlockNLJ).
func (db *DB) opNLJoin(j *algebra.Join, left, right *Table, res *Result) (*Table, error) {
	if db.execMode == ExecRow {
		return db.rowJoin(j, left, right, res)
	}
	return db.batchJoin(j, left, right, res)
}

// opAggregate dispatches an aggregation to the active executor.
func (db *DB) opAggregate(agg *algebra.Aggregate, in *Table, res *Result) (*Table, error) {
	if db.execMode == ExecRow {
		return db.rowAggregate(agg, in, res)
	}
	return db.batchAggregate(agg, in, res)
}

// resolveJoinConds resolves every join condition against the two input
// schemas once, before any row is touched.
func resolveJoinConds(j *algebra.Join, left, right *Table) ([]condIdx, error) {
	conds := make([]condIdx, len(j.On))
	for i, c := range j.On {
		li, err := left.Schema.Resolve(c.Left)
		if err != nil {
			return nil, fmt.Errorf("engine: join condition %s: %w", c, err)
		}
		ri, err := right.Schema.Resolve(c.Right)
		if err != nil {
			return nil, fmt.Errorf("engine: join condition %s: %w", c, err)
		}
		conds[i] = condIdx{li, ri}
	}
	return conds, nil
}

// condIdx is one resolved equi-join condition: column positions in the
// left and right schemas.
type condIdx struct{ li, ri int }

// resolveProjection resolves a projection's output schema and source
// column positions.
func resolveProjection(p *algebra.Project, in *Table) (*algebra.Schema, []int, error) {
	outSchema, err := in.Schema.Project(p.Cols)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: %w", err)
	}
	idx := make([]int, len(p.Cols))
	for i, ref := range p.Cols {
		j, err := in.Schema.Resolve(ref)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: %w", err)
		}
		idx[i] = j
	}
	return outSchema, idx, nil
}

func (db *DB) account(s OpStats) {
	db.Counter.AddReads(s.Reads)
	db.Counter.AddWrites(s.Writes)
	db.blockReads.Add(s.Reads)
	db.blockWrites.Add(s.Writes)
	obs.Emit(db.obsv, obs.EvEngineOp,
		obs.String("op", s.Label),
		obs.Int("reads", s.Reads),
		obs.Int("writes", s.Writes),
		obs.Int("out_rows", int64(s.OutRows)),
		obs.Int("out_blocks", int64(s.OutBlocks)))
}
