package engine_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
)

// The batch-vs-row differential harness. The vectorized batch executor
// (the default) must be bit-identical to the legacy row-at-a-time
// reference executor kept behind SetExecMode(ExecRow): same result rows
// in the same order, same per-operator I/O stats, same counter totals,
// same journal replay state across delta epochs. Every assertion here is
// exact equality — no multiset normalization, no tolerance.

// dualDBs builds two identically-seeded paper databases, one per
// execution mode.
func dualDBs(t *testing.T, blockRows int, scale float64, seed int64) (batch, row *engine.DB) {
	t.Helper()
	var err error
	batch, err = datagen.PaperDB(blockRows, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	row, err = datagen.PaperDB(blockRows, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	batch.SetExecMode(engine.ExecBatch)
	row.SetExecMode(engine.ExecRow)
	return batch, row
}

// orderedRows renders a table's rows in stored order — exact, order-
// sensitive comparison, unlike resultKey's sorted multiset.
func orderedRows(tab *engine.Table) []string {
	out := make([]string, tab.NumRows())
	for i := range out {
		out[i] = tab.Row(i).String()
	}
	return out
}

// assertResultsIdentical requires two executions to agree on rows (in
// order) and on the full per-operator stats sequence.
func assertResultsIdentical(t *testing.T, label string, b, r *engine.Result) {
	t.Helper()
	if !reflect.DeepEqual(b.Ops, r.Ops) {
		t.Fatalf("%s: operator stats diverge\nbatch: %+v\nrow:   %+v", label, b.Ops, r.Ops)
	}
	br, rr := orderedRows(b.Table), r.Table
	rrows := orderedRows(rr)
	if len(br) != len(rrows) {
		t.Fatalf("%s: batch returned %d rows, row executor %d", label, len(br), len(rrows))
	}
	for i := range br {
		if br[i] != rrows[i] {
			t.Fatalf("%s: row %d diverges\nbatch: %s\nrow:   %s", label, i, br[i], rrows[i])
		}
	}
}

// assertTablesIdentical compares a stored relation across the two
// databases, row for row.
func assertTablesIdentical(t *testing.T, label string, bdb, rdb *engine.DB, name string) {
	t.Helper()
	bt, err := bdb.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rdb.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	b, r := orderedRows(bt), orderedRows(rt)
	if !reflect.DeepEqual(b, r) {
		t.Fatalf("%s: table %s diverges (%d vs %d rows)", label, name, len(b), len(r))
	}
}

// assertCountersIdentical compares cumulative block I/O.
func assertCountersIdentical(t *testing.T, label string, bdb, rdb *engine.DB) {
	t.Helper()
	if bdb.Counter.Reads() != rdb.Counter.Reads() || bdb.Counter.Writes() != rdb.Counter.Writes() {
		t.Fatalf("%s: counters diverge: batch %d/%d row %d/%d", label,
			bdb.Counter.Reads(), bdb.Counter.Writes(), rdb.Counter.Reads(), rdb.Counter.Writes())
	}
}

// TestBatchVsRowDifferential sweeps generated SPJ+aggregate plans over
// the paper schema under both join algorithms and asserts the batch and
// row executors are indistinguishable: identical rows, identical ordered
// output, identical per-operator block counts, identical totals.
func TestBatchVsRowDifferential(t *testing.T) {
	algos := []struct {
		name string
		algo engine.JoinAlgorithm
	}{
		{"nlj", engine.JoinNestedLoop},
		{"hash", engine.JoinHash},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			bdb, rdb := dualDBs(t, 8, 0.004, 20260808)
			bdb.SetJoinAlgorithm(a.algo)
			rdb.SetJoinAlgorithm(a.algo)
			g := &planGen{r: rand.New(rand.NewSource(711)), db: bdb}
			const trials = 80
			for trial := 0; trial < trials; trial++ {
				plan := g.randomPlan(t)
				bres, berr := bdb.Execute(plan)
				rres, rerr := rdb.Execute(plan)
				if (berr == nil) != (rerr == nil) ||
					(berr != nil && berr.Error() != rerr.Error()) {
					t.Fatalf("trial %d: errors diverge\nbatch: %v\nrow:   %v\n%s",
						trial, berr, rerr, plan.Canonical())
				}
				if berr != nil {
					continue
				}
				assertResultsIdentical(t, fmt.Sprintf("trial %d (%s)", trial, plan.Canonical()), bres, rres)
			}
			assertCountersIdentical(t, "after sweep", bdb, rdb)
		})
	}
}

// diffViews is the view set the delta-epoch differential maintains: one
// select-project-join view (append path) and one aggregate view (merge
// path), both incrementally maintainable.
func diffViews(t *testing.T, db *engine.DB) {
	t.Helper()
	order, err := db.Table("Order")
	if err != nil {
		t.Fatal(err)
	}
	product, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	join := algebra.NewJoin(
		algebra.NewScan("Order", order.Schema),
		algebra.NewScan("Product", product.Schema),
		[]algebra.JoinCond{{Left: algebra.Ref("Order", "Pid"), Right: algebra.Ref("Product", "Pid")}})
	spj := algebra.NewSelect(algebra.Clone(join),
		algebra.Compare(algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpGt,
			algebra.LitOperand(algebra.IntVal(100))))
	if _, err := db.Materialize("mv_spj", spj); err != nil {
		t.Fatal(err)
	}
	agg := algebra.NewAggregate(algebra.Clone(join),
		[]algebra.ColumnRef{algebra.Ref("Product", "Did")},
		[]algebra.Aggregation{
			{Func: algebra.AggCount, Alias: "n"},
			{Func: algebra.AggSum, Arg: algebra.Ref("Order", "quantity"), Alias: "total"},
		})
	if _, err := db.Materialize("mv_agg", agg); err != nil {
		t.Fatal(err)
	}
}

// diffDeltaRows generates one deterministic delta batch per base table.
func diffDeltaRows(epoch int64) map[string][][]algebra.Value {
	r := rand.New(rand.NewSource(4000 + epoch))
	rows := func(n int, gen func(i int) []algebra.Value) [][]algebra.Value {
		out := make([][]algebra.Value, n)
		for i := range out {
			out[i] = gen(i)
		}
		return out
	}
	return map[string][][]algebra.Value{
		"Order": rows(9, func(i int) []algebra.Value {
			return []algebra.Value{
				algebra.IntVal(r.Int63n(120)),
				algebra.IntVal(r.Int63n(80)),
				algebra.IntVal(1 + r.Int63n(200)),
				algebra.DateVal(9496 + r.Int63n(365)),
			}
		}),
		"Product": rows(4, func(i int) []algebra.Value {
			return []algebra.Value{
				algebra.IntVal(120 + epoch*10 + int64(i)),
				algebra.StringVal(fmt.Sprintf("product-new-%d-%d", epoch, i)),
				algebra.IntVal(r.Int63n(20)),
			}
		}),
	}
}

// TestBatchVsRowDeltaEpochsDifferential runs identical delta epochs —
// journaled ingest, incremental refresh (append and merge paths, with a
// mid-epoch watermark), and delta application — through both executors
// and asserts every observable agrees: refresh results and operator
// stats, stored view contents, base tables after the fold, pending delta
// counts, and the journals' replay state.
func TestBatchVsRowDeltaEpochsDifferential(t *testing.T) {
	bdb, rdb := dualDBs(t, 8, 0.004, 20260809)
	diffViews(t, bdb)
	diffViews(t, rdb)
	bj, rj := engine.NewMemJournal(), engine.NewMemJournal()

	pendingState := func(j engine.DeltaJournal) string {
		recs, err := j.Pending()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(recs)
	}

	for epoch := int64(0); epoch < 3; epoch++ {
		label := fmt.Sprintf("epoch %d", epoch)
		var lastB, lastR uint64
		for table, rows := range map[string][][]algebra.Value{
			"Order":   diffDeltaRows(epoch)["Order"],
			"Product": diffDeltaRows(epoch)["Product"],
		} {
			var err error
			if lastB, err = bj.Append(table, rows); err != nil {
				t.Fatal(err)
			}
			if lastR, err = rj.Append(table, rows); err != nil {
				t.Fatal(err)
			}
			if err := bdb.InsertDelta(table, rows...); err != nil {
				t.Fatal(err)
			}
			if err := rdb.InsertDelta(table, rows...); err != nil {
				t.Fatal(err)
			}
		}
		if bdb.PendingDeltaRows("Order") != rdb.PendingDeltaRows("Order") {
			t.Fatalf("%s: pending delta rows diverge", label)
		}
		if pendingState(bj) != pendingState(rj) {
			t.Fatalf("%s: journal replay state diverges before refresh", label)
		}

		// Refresh mv_spj first, then insert a mid-epoch straggler batch so
		// the second refresh exercises the per-view watermark path.
		for vi, view := range []string{"mv_spj", "mv_agg"} {
			bres, berr := bdb.IncrementalRefresh(view)
			rres, rerr := rdb.IncrementalRefresh(view)
			if (berr == nil) != (rerr == nil) {
				t.Fatalf("%s %s: refresh errors diverge: %v vs %v", label, view, berr, rerr)
			}
			if berr == nil {
				assertResultsIdentical(t, label+" refresh "+view, bres, rres)
			}
			if vi == 0 && epoch == 1 {
				straggler := [][]algebra.Value{{
					algebra.IntVal(3), algebra.IntVal(5), algebra.IntVal(150), algebra.DateVal(9700),
				}}
				if err := bdb.InsertDelta("Order", straggler...); err != nil {
					t.Fatal(err)
				}
				if err := rdb.InsertDelta("Order", straggler...); err != nil {
					t.Fatal(err)
				}
				// Re-refresh the already-propagated view: only the straggler
				// may flow through (watermark), identically in both modes.
				bres2, err := bdb.IncrementalRefresh(view)
				if err != nil {
					t.Fatal(err)
				}
				rres2, err := rdb.IncrementalRefresh(view)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, label+" watermark re-refresh "+view, bres2, rres2)
			}
		}

		if err := bdb.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
		if err := rdb.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
		if err := bj.Commit(lastB); err != nil {
			t.Fatal(err)
		}
		if err := rj.Commit(lastR); err != nil {
			t.Fatal(err)
		}
		if pendingState(bj) != pendingState(rj) {
			t.Fatalf("%s: journal replay state diverges after commit", label)
		}

		for _, name := range bdb.Tables() {
			assertTablesIdentical(t, label, bdb, rdb, name)
		}
		for _, view := range []string{"mv_spj", "mv_agg"} {
			bv, err := bdb.View(view)
			if err != nil {
				t.Fatal(err)
			}
			rv, err := rdb.View(view)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(orderedRows(bv.Table()), orderedRows(rv.Table())) {
				t.Fatalf("%s: view %s diverges after epoch", label, view)
			}
		}
		assertCountersIdentical(t, label, bdb, rdb)
	}
}

// TestBatchVsRowRecomputeRefreshDifferential covers the full-recompute
// refresh path (RefreshAll) plus queries over the maintained views.
func TestBatchVsRowRecomputeRefreshDifferential(t *testing.T) {
	bdb, rdb := dualDBs(t, 8, 0.004, 20260810)
	diffViews(t, bdb)
	diffViews(t, rdb)
	for _, rows := range []map[string][][]algebra.Value{diffDeltaRows(7)} {
		for table, rs := range rows {
			if err := bdb.InsertDelta(table, rs...); err != nil {
				t.Fatal(err)
			}
			if err := rdb.InsertDelta(table, rs...); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := bdb.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if err := rdb.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	bres, err := bdb.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rdb.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	for name, br := range bres {
		rr, ok := rres[name]
		if !ok {
			t.Fatalf("row executor missing refresh result for %s", name)
		}
		assertResultsIdentical(t, "refresh "+name, br, rr)
	}
	// Queries over the refreshed views must agree too.
	g := &planGen{r: rand.New(rand.NewSource(515)), db: bdb}
	for trial := 0; trial < 20; trial++ {
		plan := g.randomPlan(t)
		bq, err := bdb.Execute(bdb.RewriteWithViews(plan))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rq, err := rdb.Execute(rdb.RewriteWithViews(plan))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertResultsIdentical(t, fmt.Sprintf("view query trial %d", trial), bq, rq)
	}
}
