package serve

// The cost-accountability plane of the serving layer. The server carries a
// costaudit.Ledger (Config.Audit; nil disables auditing entirely): every
// query class and every maintained view gets a §4.1 predicted block-access
// cost registered against it, every cache-miss execution and view refresh
// reports its measured block I/O, and the ledger's EWMA calibration ratios
// tell whether the design is still priced right. When a view's ratio
// drifts outside the calibration band, the advisor re-runs the paper's
// Figure 9 selection with recalibrated weights — observability feeding
// design, not just reporting.

import (
	"fmt"
	"math"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/costaudit"
	"github.com/warehousekit/mvpp/internal/obs"
)

// Calibration-ratio clamp for recalibrated advisor weights: a query's
// observed frequency is scaled by its calibration ratio bounded to
// [minRecalWeight, maxRecalWeight], so one wildly misestimated query
// cannot dominate the re-selection.
const (
	minRecalWeight = 0.25
	maxRecalWeight = 4.0
)

// viewSkew is the prediction multiplier for one view's refresh entries:
// the global test skew times any per-view skew — so a drift-precision
// test can move one operator's cost constants while the rest stay true.
func (s *Server) viewSkew(name string) float64 {
	k := s.auditSkew
	if m, ok := s.auditSkewViews[name]; ok && m > 0 {
		k *= m
	}
	return k
}

// repriceAudit registers fresh §4.1 predictions for every workload query
// (priced over its current view-rewritten plan) and every materialized
// view's recomputation, against statistics of the live warehouse — views
// included, since rewritten plans scan them by name. Called at server
// construction and after every advice swap. Entries that fail to price
// keep their previous prediction (or none); their observations still
// count samples but never flag drift.
func (s *Server) repriceAudit() {
	if s.audit == nil {
		return
	}
	cat, err := s.db.CatalogWithViews()
	if err != nil {
		return
	}
	est := cost.NewEstimator(cat, cost.DefaultOptions())
	// The engine executes operator-at-a-time with block nested loops, so
	// the audit prices with the same discipline regardless of the design
	// model: the ratio then measures estimation error, not model mismatch.
	pricer := costaudit.NewPricer(est, &cost.BlockNLJModel{})
	s.auditMu.Lock()
	s.auditPricer = pricer
	s.auditMu.Unlock()

	for name, qs := range s.queries {
		plan := s.db.RewriteWithViewsSubsuming(qs.spec.Plan)
		c, err := pricer.PlanCost(plan)
		if err != nil {
			continue
		}
		s.audit.Predict(costaudit.KindQuery, name, c*s.auditSkew)
	}
	for _, name := range s.db.Views() {
		v, err := s.db.View(name)
		if err != nil {
			continue
		}
		c, err := pricer.PlanCost(v.Plan)
		if err != nil {
			continue
		}
		s.audit.Predict(costaudit.KindRecompute, name, c*s.viewSkew(name))
	}
}

// predictIncremental registers this epoch's delta-propagation price for
// each view about to refresh incrementally, derived from the actual
// pending delta fractions (Δrows / stored rows per base relation). Runs
// after the epoch's deltas are staged, before the refreshes execute.
func (s *Server) predictIncremental(names []string) {
	if s.audit == nil || len(names) == 0 {
		return
	}
	s.auditMu.Lock()
	pricer := s.auditPricer
	s.auditMu.Unlock()
	if pricer == nil {
		return
	}
	frac := make(map[string]float64)
	for _, table := range s.db.Tables() {
		t, err := s.db.Table(table)
		if err != nil || t.NumRows() == 0 {
			continue
		}
		if p := s.db.PendingDeltaRows(table); p > 0 {
			frac[table] = float64(p) / float64(t.NumRows())
		}
	}
	if len(frac) == 0 {
		return
	}
	de := cost.NewDeltaEstimator(pricer.Estimator(), cost.DeltaSpec{PerRelation: frac})
	for _, name := range names {
		v, err := s.db.View(name)
		if err != nil {
			continue
		}
		c, ok, err := de.MaintenanceCost(pricer.Model(), v.Plan)
		if err != nil || !ok || math.IsInf(c, 0) {
			continue
		}
		s.audit.Predict(costaudit.KindIncremental, name, c*s.viewSkew(name))
	}
}

// observeAudit records one measured actual (block reads + writes) in the
// ledger and surfaces newly detected drift as an event.
func (s *Server) observeAudit(kind costaudit.Kind, name string, actual int64) {
	if s.audit == nil {
		return
	}
	o := s.audit.Observe(kind, name, float64(actual))
	s.stats.costObservations.Add(1)
	s.ctrCostObs.Inc()
	if o.NewlyDrifted {
		s.stats.costDrifts.Add(1)
		s.ctrCostDrift.Inc()
		obs.Emit(s.obsv, obs.EvCostDrift,
			obs.String("kind", string(kind)),
			obs.String("name", name),
			obs.Float("ratio", o.Ratio))
	}
}

// maybeRecalibrate closes the accountability loop: when a view's
// calibration ratio has drifted out of the band, the advisor re-runs
// Figure 9 selection with recalibrated weights. Runs after each epoch
// with maintMu released (an auto-applied proposal re-takes it). Each
// drift episode triggers once — a view stays latched until its entries
// recover, so a persistently drifted view does not re-advise every epoch.
func (s *Server) maybeRecalibrate() {
	if s.audit == nil {
		return
	}
	drifted := s.audit.DriftedViews()
	set := make(map[string]bool, len(drifted))
	for _, name := range drifted {
		set[name] = true
	}
	s.auditMu.Lock()
	for name := range s.recalHandled {
		if !set[name] {
			delete(s.recalHandled, name) // recovered: a future drift is a new episode
		}
	}
	var fresh []string
	for _, name := range drifted {
		if !s.recalHandled[name] {
			s.recalHandled[name] = true
			fresh = append(fresh, name)
		}
	}
	s.auditMu.Unlock()
	if len(fresh) == 0 || s.mvpp == nil || s.model == nil {
		return
	}

	a, err := s.AdviseCalibrated()
	if err != nil {
		// Un-latch so the next epoch retries the re-selection.
		s.auditMu.Lock()
		for _, name := range fresh {
			delete(s.recalHandled, name)
		}
		s.auditMu.Unlock()
		return
	}
	s.auditMu.Lock()
	s.lastRecal = a
	s.auditMu.Unlock()
	s.stats.recalibrations.Add(1)
	s.ctrRecal.Inc()
	applied := false
	if s.auditAutoApply && a.Changed() {
		applied = s.ApplyAdvice(a) == nil
	}
	obs.Emit(s.obsv, obs.EvServeRecalibrated,
		obs.String("views", strings.Join(fresh, ",")),
		obs.Bool("applied", applied),
		obs.Float("current_total", a.CurrentTotal),
		obs.Float("proposed_total", a.ProposedTotal))
}

// AdviseCalibrated re-runs the paper's view selection under observed
// frequencies recalibrated by the ledger: each query's frequency is scaled
// by its EWMA calibration ratio (clamped to [0.25, 4]), so fq × predicted
// approximates fq × actual — the Figure 9 weights re-anchored to measured
// behavior. Falls back to plain observed frequencies for queries without a
// calibrated entry.
func (s *Server) AdviseCalibrated() (*Advice, error) {
	observed := s.ObservedFrequencies()
	if s.audit != nil {
		for name := range observed {
			if e, ok := s.audit.Lookup(costaudit.KindQuery, name); ok && e.Ratio > 0 {
				observed[name] *= math.Min(maxRecalWeight, math.Max(minRecalWeight, e.Ratio))
			}
		}
	}
	return s.adviseWith(observed)
}

// CostReport snapshots the cost-accountability ledger (empty when auditing
// is disabled).
func (s *Server) CostReport() costaudit.Report { return s.audit.Snapshot() }

// LastRecalibration returns the advice produced by the most recent
// drift-triggered re-selection (nil if none fired yet).
func (s *Server) LastRecalibration() *Advice {
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	return s.lastRecal
}

// Explain renders the named workload query's plan as the server would run
// it right now — rewritten over the materialized views — priced per
// operator by the audit pricer and annotated with the ledger's observed
// actuals for the query class and for every view the plan reads.
func (s *Server) Explain(name string) (string, error) {
	qs, ok := s.queries[name]
	if !ok {
		return "", fmt.Errorf("serve: unknown query %q", name)
	}
	plan := s.db.RewriteWithViewsSubsuming(qs.spec.Plan)
	s.auditMu.Lock()
	pricer := s.auditPricer
	s.auditMu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "query %s\n", name)
	if e, ok := s.audit.Lookup(costaudit.KindQuery, name); ok {
		fmt.Fprintf(&b, "%s\n", formatEntry(e))
	} else if s.audit == nil {
		b.WriteString("cost audit disabled\n")
	}

	line := func(n algebra.Node) string {
		lbl := n.Label()
		if pricer != nil {
			if c, err := pricer.OpCost(n); err == nil {
				if est, err := pricer.Estimator().Estimate(n); err == nil {
					lbl = fmt.Sprintf("%s  — op %s blocks, est %.0f rows / %.1f blocks",
						lbl, trimFloat(c), est.Rows, est.Blocks)
				}
			}
		}
		if scan, ok := n.(*algebra.Scan); ok {
			for _, kind := range []costaudit.Kind{costaudit.KindRecompute, costaudit.KindIncremental} {
				if e, ok := s.audit.Lookup(kind, scan.Relation); ok && e.Samples > 0 {
					lbl += fmt.Sprintf("  [%s refresh ×%.2f/%d]", e.Kind, e.Ratio, e.Samples)
				}
			}
		}
		return lbl
	}
	b.WriteString(line(plan))
	b.WriteByte('\n')
	var walk func(n algebra.Node, prefix string)
	walk = func(n algebra.Node, prefix string) {
		children := n.Children()
		for i, c := range children {
			branch, next := "├── ", prefix+"│   "
			if i == len(children)-1 {
				branch, next = "└── ", prefix+"    "
			}
			b.WriteString(prefix + branch + line(c) + "\n")
			walk(c, next)
		}
	}
	walk(plan, "")
	return b.String(), nil
}

// formatEntry renders one ledger entry as the one-line summary both
// Explain and the CLIs print.
func formatEntry(e costaudit.Entry) string {
	drift := ""
	if e.Drifted {
		drift = "  DRIFTED"
	}
	return fmt.Sprintf("predicted %s blocks · last actual %s · mean %.1f · calibration ×%.2f over %d samples%s",
		trimFloat(e.PredictedBlocks), trimFloat(e.LastActualBlocks), e.MeanActualBlocks,
		e.Ratio, e.Samples, drift)
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.1f", f), "0"), ".")
}
