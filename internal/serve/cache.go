package serve

import (
	"container/list"
	"sync"

	"github.com/warehousekit/mvpp/internal/engine"
)

// cacheEntry is one cached query result, pinned to the refresh epoch it was
// computed under.
type cacheEntry struct {
	key   string
	epoch uint64
	table *engine.Table
}

// resultCache is an LRU result cache keyed by the plan's structural key.
// Entries carry the epoch they were computed under; a get under a newer
// epoch misses and drops the entry (lazy invalidation), and the scheduler
// additionally clears the whole cache when an epoch lands (eager
// invalidation), so capacity is never wasted on unreachable entries.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	byKey map[string]*list.Element
}

// newResultCache builds a cache holding up to capacity entries; capacity
// < 0 disables caching (every get misses, every put is dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string, epoch uint64) (*engine.Table, uint64, bool) {
	if c.cap < 0 {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch {
		c.ll.Remove(el)
		delete(c.byKey, key)
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	return e.table, e.epoch, true
}

func (c *resultCache) put(key string, epoch uint64, table *engine.Table) {
	if c.cap < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		e.epoch, e.table = epoch, table
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, table: table})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// invalidate drops every entry — called when a maintenance epoch lands.
func (c *resultCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
