package serve

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/snapshot"
)

func testStore(t *testing.T) *snapshot.Store {
	t.Helper()
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCheckpointWithoutStore(t *testing.T) {
	s, _ := serveFixture(t, Config{DeltaBatch: 1 << 20})
	if _, err := s.Checkpoint(); !errors.Is(err, ErrNoSnapshots) {
		t.Fatalf("Checkpoint without a store = %v, want ErrNoSnapshots", err)
	}
	if ss := s.SnapshotStats(); ss.Configured {
		t.Error("SnapshotStats.Configured true without a store")
	}
}

func TestCheckpointDeclinesMidEpoch(t *testing.T) {
	s, db := serveFixture(t, Config{
		DeltaBatch: 1 << 20,
		Snapshots:  testStore(t),
		Journal:    engine.NewMemJournal(),
	})
	// Deltas staged directly into the engine (bypassing the serving
	// layer's buffer) may already be partially folded into view tables by
	// an interrupted epoch: the checkpoint must decline, not persist a
	// state the watermark does not cover.
	div, _ := deltaPair(1)
	if err := db.InsertDelta("Division", div); err != nil {
		t.Fatal(err)
	}
	res, err := s.Checkpoint()
	if err != nil || res != nil {
		t.Fatalf("mid-epoch checkpoint = (%v, %v), want (nil, nil)", res, err)
	}
	if ss := s.SnapshotStats(); ss.Skipped != 1 || ss.Checkpoints != 0 {
		t.Errorf("stats = skipped %d, checkpoints %d; want 1, 0", ss.Skipped, ss.Checkpoints)
	}
	// After the epoch lands it succeeds and stamps the acked watermark.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err = s.Checkpoint()
	if err != nil || res == nil {
		t.Fatalf("post-flush checkpoint = (%v, %v)", res, err)
	}
	ss := s.SnapshotStats()
	if ss.Checkpoints != 1 || ss.Generation != res.Generation {
		t.Errorf("stats after checkpoint = %+v", ss)
	}
	if len(ss.Views) != 2 {
		t.Errorf("checkpointed views = %d, want both healthy views", len(ss.Views))
	}
}

func TestEpochCountTriggerFiresCheckpoints(t *testing.T) {
	s, _ := serveFixture(t, Config{
		DeltaBatch:          1 << 20,
		Snapshots:           testStore(t),
		Journal:             engine.NewMemJournal(),
		SnapshotEveryEpochs: 2,
	})
	for i := int64(1); i <= 4; i++ {
		div, prod := deltaPair(i)
		if err := s.Ingest("Division", div); err != nil {
			t.Fatal(err)
		}
		if err := s.Ingest("Product", prod); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ss := s.SnapshotStats()
	if ss.Checkpoints < 2 {
		t.Errorf("epoch trigger fired %d checkpoints over 4 epochs with period 2, want >= 2", ss.Checkpoints)
	}
	// Idle flushes land no epoch and must not re-trigger.
	before := ss.Checkpoints
	for i := 0; i < 3; i++ {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.SnapshotStats().Checkpoints; got != before {
		t.Errorf("idle flushes advanced checkpoints %d -> %d", before, got)
	}
}

func TestCheckpointTruncatesJournal(t *testing.T) {
	j := engine.NewMemJournal()
	s, _ := serveFixture(t, Config{
		DeltaBatch: 1 << 20,
		Snapshots:  testStore(t),
		Journal:    j,
	})
	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if recs, _ := j.RecordsSince(0); len(recs) == 0 {
		t.Fatal("journal retained nothing before the checkpoint")
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint's watermark covers both records; compaction drops them.
	if recs, _ := j.RecordsSince(0); len(recs) != 0 {
		t.Errorf("journal still retains %d records past the checkpoint", len(recs))
	}
}
