package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/obs"
)

// Defaults for the zero values of RetryPolicy and BreakerPolicy.
const (
	DefaultRetryAttempts    = 3
	DefaultRetryBase        = 2 * time.Millisecond
	DefaultRetryMax         = 100 * time.Millisecond
	DefaultRetryMultiplier  = 2.0
	DefaultRetryJitter      = 0.2
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 250 * time.Millisecond
)

// RetryPolicy bounds the retry-with-exponential-backoff loop the scheduler
// wraps around every refresh step of a maintenance epoch (incremental
// refresh, full recompute, delta application). Zero values take the
// defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the first call included.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// multiplies the delay by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter (0.2 = ±20%) so retries from
	// repeated epochs do not align; negative disables jitter entirely.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMax
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultRetryMultiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter == 0 {
		p.Jitter = DefaultRetryJitter
	}
	return p
}

// BreakerPolicy configures the per-view circuit breaker. Zero values take
// the defaults (except StalenessBound, where 0 disables the bound).
type BreakerPolicy struct {
	// FailureThreshold is how many consecutive persistent refresh failures
	// (each already retried per RetryPolicy) trip the breaker open.
	FailureThreshold int
	// Cooldown is how long an open breaker waits before the next epoch
	// probes the view half-open (one full recompute attempt).
	Cooldown time.Duration
	// StalenessBound, when positive, degrades queries away from a view
	// whose lag — base-table rows applied that the view does not reflect —
	// exceeds the bound, even while its breaker is still closed. 0 disables
	// the bound.
	StalenessBound int
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = DefaultBreakerThreshold
	}
	if p.Cooldown <= 0 {
		p.Cooldown = DefaultBreakerCooldown
	}
	return p
}

// BreakerState is a circuit breaker position.
type BreakerState int32

// Circuit breaker positions: a closed breaker serves the view normally; an
// open breaker degrades its queries to base relations and pauses refresh
// attempts until Cooldown elapses; half-open is the probe — one recompute
// attempt that either closes the breaker or re-opens it.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(b))
	}
}

// ViewHealth is one maintained view's fault-tolerance status.
type ViewHealth struct {
	// State is the circuit breaker position.
	State BreakerState
	// ConsecutiveFailures counts persistent refresh failures since the last
	// successful refresh.
	ConsecutiveFailures int
	// LagRows counts rows applied to the view's base relations that the
	// stored view does not reflect — its true staleness. Buffered deltas
	// are invisible to every plan and do not count.
	LagRows int
	// Degrading reports whether queries over this view are currently being
	// answered from base relations instead.
	Degrading bool
	// LastError is the most recent refresh failure ("" when healthy).
	LastError string
}

// Health reports the fault-tolerance status of every maintained view.
func (s *Server) Health() map[string]ViewHealth {
	sc := s.sched
	now := time.Now()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make(map[string]ViewHealth, len(sc.views))
	for name, vs := range sc.views {
		out[name] = ViewHealth{
			State:               vs.state,
			ConsecutiveFailures: vs.failures,
			LagRows:             vs.lag,
			Degrading:           vs.degrading(sc.breaker, now),
			LastError:           vs.lastErr,
		}
	}
	return out
}

// retryRefresh runs one refresh step under the retry policy: panics become
// errors (and count as recovered), transient failures back off
// exponentially with jitter, and engine.ErrNotIncremental returns
// immediately — it is a design-time fallback signal, not a fault. The
// server's base context aborts backoff sleeps when the server closes.
// sctx is the step's span context (zero when the epoch is untraced); every
// retry is stamped onto the flight recorder under it, so a dump shows which
// attempts a struggling view burned. Returns how many attempts ran.
func (s *Server) retryRefresh(ctx context.Context, sctx obs.SpanContext, label string, f func() (*engine.Result, error)) (*engine.Result, int, error) {
	p := s.retry
	guarded := func() (res *engine.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.stats.panics.Add(1)
				s.ctrPanics.Inc()
				err = fmt.Errorf("serve: %s recovered from panic: %v", label, r)
			}
		}()
		return f()
	}
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		res, err := guarded()
		if err == nil || errors.Is(err, engine.ErrNotIncremental) {
			return res, attempt, err
		}
		if attempt >= p.MaxAttempts {
			return nil, attempt, err
		}
		s.stats.retries.Add(1)
		s.ctrRetries.Inc()
		obs.Emit(s.obsv, obs.EvServeRetry,
			obs.String("target", label),
			obs.Int("attempt", int64(attempt)),
			obs.String("error", err.Error()))
		if sctx.Valid() {
			s.flight.RecordEvent(sctx, obs.EvServeRetry,
				obs.String("target", label),
				obs.Int("attempt", int64(attempt)),
				obs.String("error", err.Error()))
		}
		select {
		case <-time.After(s.jittered(delay)):
		case <-ctx.Done():
			return nil, attempt, fmt.Errorf("serve: retry of %s aborted: %w (last error: %v)", label, ctx.Err(), err)
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// jittered spreads a backoff delay by ±Jitter using the server's seeded
// jitter source (deterministic across runs, like the fault injector).
func (s *Server) jittered(d time.Duration) time.Duration {
	if s.retry.Jitter <= 0 {
		return d
	}
	s.jmu.Lock()
	f := 1 + s.retry.Jitter*(2*s.jrng.Float64()-1)
	s.jmu.Unlock()
	return time.Duration(float64(d) * f)
}
