package serve

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/fault"
)

// fastRetry keeps chaos tests quick: two attempts, microsecond backoff.
var fastRetry = RetryPolicy{MaxAttempts: 2, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}

// rowsFingerprint renders a table's rows as sorted strings, for
// order-insensitive bit-for-bit comparison.
func rowsFingerprint(t *engine.Table) []string {
	out := make([]string, 0, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		tup := t.Row(i)
		parts := make([]string, len(tup.Values))
		for j, v := range tup.Values {
			parts[j] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBreakerDegradesAndRecovers drives the full circuit-breaker state
// machine deterministically: persistent refresh failures leave the view
// lagging, trip the breaker at the threshold, degrade queries to base
// relations (bit-for-bit equal to a direct execution), and a half-open
// probe after disarming recovers the view.
func TestBreakerDegradesAndRecovers(t *testing.T) {
	inj := fault.New(1, fault.Plan{
		fault.SiteEngineRefresh:            {ErrProb: 1},
		fault.SiteEngineIncrementalRefresh: {ErrProb: 1},
	})
	s, db := serveFixture(t, Config{
		DeltaBatch: 1 << 20,
		Injector:   inj,
		Retry:      fastRetry,
		Breaker:    BreakerPolicy{FailureThreshold: 2, Cooldown: time.Nanosecond},
	})
	db.SetInjector(inj)
	ctx := context.Background()

	r0, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	baseRows := r0.Table.NumRows()

	// Epoch 1: the delta lands in the base tables, but tmp2's incremental
	// refresh persistently fails (falling back) and so does the recompute —
	// one strike, breaker still closed, view now lagging.
	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("an epoch with per-view failures should still complete: %v", err)
	}
	h := s.Health()["tmp2"]
	if h.State != BreakerClosed || h.ConsecutiveFailures != 1 || h.LagRows != 2 {
		t.Fatalf("after one failed refresh: %+v, want closed/1 failure/2 lag rows", h)
	}
	r1, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Degraded {
		t.Fatal("breaker closed and no staleness bound: query should still use the (stale) view")
	}
	if r1.Table.NumRows() != baseRows {
		t.Fatalf("stale view should still show %d rows, got %d", baseRows, r1.Table.NumRows())
	}

	// Epoch 2: the lagging view is retried and fails again — second strike
	// trips the breaker; queries degrade to base relations and are fresh.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	h = s.Health()["tmp2"]
	if h.State != BreakerOpen || !h.Degrading {
		t.Fatalf("after the threshold strike: %+v, want an open, degrading breaker", h)
	}
	if s.Health()["custla"].State != BreakerClosed {
		t.Fatal("custla was never touched and must stay healthy")
	}
	r2, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Degraded {
		t.Fatal("open breaker: query should be answered from base relations")
	}
	direct, err := db.Execute(s.queries["QLA"].spec.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(rowsFingerprint(r2.Table), rowsFingerprint(direct.Table)) {
		t.Fatal("degraded answer differs from a direct base-relation execution")
	}
	if r2.Table.NumRows() != baseRows+1 {
		t.Fatalf("degraded answer should be fresh: %d rows, want %d", r2.Table.NumRows(), baseRows+1)
	}

	st := s.Stats()
	if st.BreakerTrips < 1 || st.DegradedQueries < 1 || st.IncrementalFallbacks != 1 ||
		st.Retries < 1 || st.RefreshFailures < 2 {
		t.Fatalf("fault stats not recorded: %+v", st)
	}

	// Recovery: disarm, flush — cooldown (1ns) has elapsed, so the breaker
	// half-opens, the probe recompute succeeds, and the breaker closes.
	inj.Disarm()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	h = s.Health()["tmp2"]
	if h.State != BreakerClosed || h.LagRows != 0 || h.ConsecutiveFailures != 0 || h.LastError != "" {
		t.Fatalf("after the half-open probe: %+v, want a closed, caught-up breaker", h)
	}
	r3, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Degraded {
		t.Fatal("recovered view should serve queries again")
	}
	if r3.Table.NumRows() != baseRows+1 {
		t.Fatalf("recovered view has %d rows, want %d", r3.Table.NumRows(), baseRows+1)
	}
}

// TestStalenessBoundDegrades: with a staleness bound set, a view whose lag
// exceeds the bound degrades queries even while its breaker is closed — no
// result is ever served from a view lagging beyond the bound.
func TestStalenessBoundDegrades(t *testing.T) {
	inj := fault.New(1, fault.Plan{
		fault.SiteEngineRefresh:            {ErrProb: 1},
		fault.SiteEngineIncrementalRefresh: {ErrProb: 1},
	})
	s, db := serveFixture(t, Config{
		DeltaBatch: 1 << 20,
		Injector:   inj,
		Retry:      fastRetry,
		Breaker:    BreakerPolicy{FailureThreshold: 100, Cooldown: time.Hour, StalenessBound: 1},
	})
	db.SetInjector(inj)
	ctx := context.Background()

	r0, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	h := s.Health()["tmp2"]
	if h.State != BreakerClosed || h.LagRows != 2 || !h.Degrading {
		t.Fatalf("lag 2 > bound 1 must degrade with a closed breaker: %+v", h)
	}
	for i := 0; i < 3; i++ {
		r, err := s.Query(ctx, "QLA")
		if err != nil {
			t.Fatal(err)
		}
		if !r.Degraded {
			t.Fatal("every query past the staleness bound must be degraded")
		}
		if r.Table.NumRows() != r0.Table.NumRows()+1 {
			t.Fatalf("degraded result not fresh: %d rows, want %d", r.Table.NumRows(), r0.Table.NumRows()+1)
		}
	}

	inj.Disarm()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health()["tmp2"]; h.Degrading || h.LagRows != 0 {
		t.Fatalf("caught-up view should serve again: %+v", h)
	}
	if r, err := s.Query(ctx, "QLA"); err != nil || r.Degraded {
		t.Fatalf("recovered query: err=%v degraded=%v", err, r.Degraded)
	}
}

// TestWorkerPanicRecovery: an injected panic in a worker is answered as an
// error and the pool keeps serving with its full capacity.
func TestWorkerPanicRecovery(t *testing.T) {
	inj := fault.New(1, fault.Plan{fault.SiteServeWorker: {PanicProb: 1}})
	s, _ := serveFixture(t, Config{Workers: 2, DeltaBatch: 1 << 20, Injector: inj})
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		_, err := s.Query(ctx, "QLA")
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("query %d: err = %v, want a recovered-panic error", i, err)
		}
	}
	inj.Disarm()
	// The same two workers must still be alive to answer this.
	if _, err := s.Query(ctx, "QLA"); err != nil {
		t.Fatalf("pool did not survive the panics: %v", err)
	}
	if got := s.Stats().PanicsRecovered; got != 4 {
		t.Errorf("panics recovered = %d, want 4", got)
	}
}

// TestDeadRequestSkipped: a request whose context expired while it sat in
// the queue is rejected by the worker without executing the plan.
func TestDeadRequestSkipped(t *testing.T) {
	db := paperServeDB(t)
	plan := laCustomerPlan(t, db)
	s, err := newServer(Config{DB: db, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, plan); !errors.Is(err, ErrRejected) {
		t.Fatalf("submit with a dead context: %v, want ErrRejected", err)
	}
	if len(s.queue) != 1 {
		t.Fatalf("request should be queued for the worker to skip, queue=%d", len(s.queue))
	}

	readsBefore := db.Counter.Reads()
	s.startWorkers(1)
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never drained the dead request")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	if got := db.Counter.Reads(); got != readsBefore {
		t.Errorf("dead request was executed anyway: %d block reads", got-readsBefore)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want exactly 1 (submitter and worker dedupe)", got)
	}
}

// TestJournalReplayNoLostDeltas simulates a crash between ingestion and the
// maintenance epoch: a second server built over the same journal (and an
// identical warehouse) replays the unacknowledged batches, and after one
// epoch no delta is lost.
func TestJournalReplayNoLostDeltas(t *testing.T) {
	j := engine.NewMemJournal()
	ctx := context.Background()

	s1, _ := serveFixture(t, Config{DeltaBatch: 1 << 20, Journal: j})
	r0, err := s1.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	baseRows := r0.Table.NumRows()
	const deltas = 3
	for i := int64(1); i <= deltas; i++ {
		div, prod := deltaPair(i)
		if err := s1.Ingest("Division", div); err != nil {
			t.Fatal(err)
		}
		if err := s1.Ingest("Product", prod); err != nil {
			t.Fatal(err)
		}
	}
	// Crash before any epoch: the buffered rows die with the server, but
	// the journal holds them unacknowledged.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if pend, _ := j.Pending(); len(pend) != 2*deltas {
		t.Fatalf("journal pending = %d batches, want %d", len(pend), 2*deltas)
	}

	// A fresh, identically-seeded warehouse plus the same journal: New
	// replays the lost batches.
	s2, _ := serveFixture(t, Config{DeltaBatch: 1 << 20, Journal: j})
	if got := s2.Stats().ReplayedDeltaRows; got != 2*deltas {
		t.Fatalf("replayed rows = %d, want %d", got, 2*deltas)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	r1, err := s2.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table.NumRows() != baseRows+deltas {
		t.Fatalf("after replay+flush QLA has %d rows, want %d — deltas were lost", r1.Table.NumRows(), baseRows+deltas)
	}
	if pend, _ := j.Pending(); len(pend) != 0 {
		t.Fatalf("journal still holds %d batches after the epoch landed", len(pend))
	}
}

// TestCloseIdempotentAndRacy: Close is safe to call twice concurrently
// while queries and ingests are in flight; everything settles to ErrClosed
// with no goroutine left blocked.
func TestCloseIdempotentAndRacy(t *testing.T) {
	s, _ := serveFixture(t, Config{Workers: 2, DeltaBatch: 1 << 20})
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := s.Query(ctx, "QLA")
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			div, _ := deltaPair(i)
			if err := s.Ingest("Division", div); errors.Is(err, ErrClosed) {
				return
			}
		}
	}()

	time.Sleep(5 * time.Millisecond)
	var closers sync.WaitGroup
	for i := 0; i < 2; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	closers.Wait()
	close(stop)
	wg.Wait()

	if _, err := s.Submit(ctx, s.queries["QLA"].spec.Plan); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after close: %v, want ErrClosed", err)
	}
	lateDiv, _ := deltaPair(999)
	if err := s.Ingest("Division", lateDiv); !errors.Is(err, ErrClosed) {
		t.Errorf("Ingest after close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("third Close: %v", err)
	}
}

// TestChaosRandomizedRecovery is the randomized -race chaos suite: random
// refresh failures, worker panics, latency spikes, and occasional delta-
// application failures while clients query and deltas stream in — then the
// faults stop and the warehouse must converge to exactly the ingested
// state: no delta lost, views equal to a direct recompute, breakers closed,
// journal drained.
func TestChaosRandomizedRecovery(t *testing.T) {
	inj := fault.New(42, fault.Plan{
		fault.SiteEngineRefresh:            {ErrProb: 0.3},
		fault.SiteEngineIncrementalRefresh: {ErrProb: 0.3},
		fault.SiteEngineApplyDeltas:        {ErrProb: 0.2},
		fault.SiteEngineExecute:            {SlowProb: 0.1, Delay: 100 * time.Microsecond},
		fault.SiteServeWorker:              {PanicProb: 0.05},
	})
	j := engine.NewMemJournal()
	s, db := serveFixture(t, Config{
		Workers:    4,
		DeltaBatch: 4,
		Injector:   inj,
		Journal:    j,
		Retry:      fastRetry,
		Breaker:    BreakerPolicy{FailureThreshold: 2, Cooldown: time.Millisecond, StalenessBound: 8},
	})
	db.SetInjector(inj)
	ctx := context.Background()

	divBefore, err := db.Table("Division")
	if err != nil {
		t.Fatal(err)
	}
	prodBefore, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	divRows0, prodRows0 := divBefore.NumRows(), prodBefore.NumRows()

	tolerable := func(err error) bool {
		return err == nil ||
			errors.Is(err, fault.ErrInjected) ||
			strings.Contains(err.Error(), "panic") ||
			strings.Contains(err.Error(), "injected")
	}

	const clients = 6
	const perClient = 30
	const deltas = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			names := []string{"QLA", "QCust"}
			for i := 0; i < perClient; i++ {
				if _, err := s.Query(ctx, names[(c+i)%2]); !tolerable(err) {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < deltas; i++ {
			div, prod := deltaPair(100 + i)
			if err := s.Ingest("Division", div); err != nil {
				errs <- err
				return
			}
			if err := s.Ingest("Product", prod); err != nil {
				errs <- err
				return
			}
			if i%5 == 4 {
				if err := s.Flush(); !tolerable(err) {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Faults off; flush until the warehouse is healthy and caught up.
	inj.Disarm()
	healthy := false
	for i := 0; i < 20 && !healthy; i++ {
		if err := s.Flush(); err != nil {
			t.Fatalf("post-chaos flush: %v", err)
		}
		healthy = true
		for _, h := range s.Health() {
			if h.State != BreakerClosed || h.LagRows != 0 {
				healthy = false
			}
		}
		for _, st := range s.Staleness() {
			if st.PendingRows != 0 {
				healthy = false
			}
		}
	}
	if !healthy {
		t.Fatalf("warehouse never converged: health=%+v staleness=%+v", s.Health(), s.Staleness())
	}

	// Zero lost deltas: the base tables hold exactly the initial rows plus
	// every ingested one.
	divAfter, err := db.Table("Division")
	if err != nil {
		t.Fatal(err)
	}
	prodAfter, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	if divAfter.NumRows() != divRows0+deltas || prodAfter.NumRows() != prodRows0+deltas {
		t.Fatalf("lost deltas: Division %d→%d (want +%d), Product %d→%d (want +%d)",
			divRows0, divAfter.NumRows(), deltas, prodRows0, prodAfter.NumRows(), deltas)
	}
	if pend, _ := j.Pending(); len(pend) != 0 {
		t.Fatalf("journal still pending %d batches after convergence", len(pend))
	}

	// Views equal a from-scratch execution of their plans, bit for bit.
	for _, q := range []string{"QLA", "QCust"} {
		res, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatalf("%s still degraded after convergence", q)
		}
		direct, err := db.Execute(s.queries[q].spec.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(rowsFingerprint(res.Table), rowsFingerprint(direct.Table)) {
			t.Fatalf("%s diverged from a direct recompute after chaos", q)
		}
	}
	if st := s.Stats(); st.DeltaRows != 2*deltas {
		t.Errorf("ingested-row accounting drifted: %d, want %d", st.DeltaRows, 2*deltas)
	}
}
