package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/obs"
)

// policyFixture is serveFixture with per-view refresh policies and SLOs:
// tmp2 (incremental) and custla (recompute) tagged as the caller asks.
func policyFixture(t *testing.T, cfg Config, policies map[string]RefreshPolicy, slos map[string]FreshnessSLO) (*Server, *engine.DB) {
	t.Helper()
	db := paperServeDB(t)
	join := laJoinPlan(t, db)
	cust := laCustomerPlan(t, db)
	if _, err := db.Materialize("tmp2", join); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("custla", cust); err != nil {
		t.Fatal(err)
	}
	cfg.DB = db
	cfg.Queries = []QuerySpec{
		{Name: "QLA", Plan: join, Frequency: 10},
		{Name: "QCust", Plan: cust, Frequency: 5},
	}
	cfg.Views = []ViewSpec{
		{Name: "tmp2", Strategy: core.MaintIncremental, Policy: policies["tmp2"], SLO: slos["tmp2"]},
		{Name: "custla", Strategy: core.MaintRecompute, Policy: policies["custla"], SLO: slos["custla"]},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, db
}

// eventObserver records emitted events (kind + attrs) for assertions, on
// top of a live metrics registry.
type eventObserver struct {
	reg *obs.Registry

	mu     sync.Mutex
	events []recordedEvent
}

type recordedEvent struct {
	kind  obs.EventKind
	attrs map[string]any
}

func newEventObserver() *eventObserver {
	return &eventObserver{reg: obs.NewRegistry()}
}

func (o *eventObserver) StartSpan(string, ...obs.Attr) obs.Span { return eventSpan{o} }

func (o *eventObserver) Event(kind obs.EventKind, attrs ...obs.Attr) {
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	o.mu.Lock()
	o.events = append(o.events, recordedEvent{kind: kind, attrs: m})
	o.mu.Unlock()
}

func (o *eventObserver) Metrics() *obs.Registry { return o.reg }

// find returns the recorded events of one kind whose attrs carry the given
// action ("" matches any).
func (o *eventObserver) find(kind obs.EventKind, action string) []recordedEvent {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []recordedEvent
	for _, e := range o.events {
		if e.kind != kind {
			continue
		}
		if action != "" && e.attrs["action"] != action {
			continue
		}
		out = append(out, e)
	}
	return out
}

// custDelta is a Customer delta row that lands in custla (city LA).
func custDelta(i int64) []algebra.Value {
	return []algebra.Value{algebra.IntVal(700000 + i), algebra.StringVal("customer-Δ"), algebra.StringVal("LA")}
}

type eventSpan struct{ *eventObserver }

func (s eventSpan) StartSpan(name string, attrs ...obs.Attr) obs.Span {
	return s.eventObserver.StartSpan(name, attrs...)
}
func (s eventSpan) Annotate(...obs.Attr) {}
func (s eventSpan) End()                 {}

func TestParsePolicyRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want RefreshPolicy
	}{
		{"manual", ManualPolicy()},
		{"on-commit", OnCommitPolicy()},
		{"oncommit", OnCommitPolicy()},
		{"", OnCommitPolicy()},
		{"streaming", StreamingPolicy()},
		{"scheduled:30s", ScheduledPolicy(30 * time.Second)},
		{"scheduled:1h30m", ScheduledPolicy(90 * time.Minute)},
	}
	for _, tc := range cases {
		got, err := ParsePolicy(tc.spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		// String round-trips back through ParsePolicy.
		again, err := ParsePolicy(got.String())
		if err != nil || again != got {
			t.Errorf("round trip of %q via %q = (%+v, %v)", tc.spec, got.String(), again, err)
		}
	}
	for _, bad := range []string{"bogus", "scheduled:", "scheduled:xyz", "scheduled:-5s", "scheduled:0s"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

// TestManualPolicyDefersUntilRefreshView: manual views accrue lag while
// epochs land around them; only RefreshView (or RefreshAllViews) catches
// them up.
func TestManualPolicyDefersUntilRefreshView(t *testing.T) {
	s, _ := policyFixture(t, Config{DeltaBatch: 1 << 20},
		map[string]RefreshPolicy{"tmp2": ManualPolicy(), "custla": ManualPolicy()}, nil)
	ctx := context.Background()

	before, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}

	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Customer", custDelta(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	st := s.Staleness()
	for name, v := range st {
		if v.Policy != "manual" {
			t.Errorf("%s policy = %q, want manual", name, v.Policy)
		}
		if v.LagRows == 0 {
			t.Errorf("%s lag = 0 after a deferred epoch", name)
		}
		if v.Status != "STALE" {
			t.Errorf("%s status = %s, want STALE", name, v.Status)
		}
		if v.Degrading {
			t.Errorf("%s degrading without an SLO or staleness bound", name)
		}
	}

	// Without an SLO the stale view still answers queries — same rows as
	// before the deltas, served from the unrefreshed view.
	stale, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if stale.Degraded {
		t.Error("manual staleness degraded the query without an SLO")
	}
	if got, want := stale.Table.NumRows(), before.Table.NumRows(); got != want {
		t.Errorf("stale view answered %d rows, want the pre-delta %d", got, want)
	}

	// A Flush with nothing buffered must not spin epochs for manual lag.
	epochsBefore := s.Stats().Epochs
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Epochs; got != epochsBefore {
		t.Errorf("idle Flush ran an epoch (%d -> %d) for manual lag", epochsBefore, got)
	}

	// RefreshView catches up exactly the named view.
	if err := s.RefreshView("tmp2"); err != nil {
		t.Fatal(err)
	}
	st = s.Staleness()
	if st["tmp2"].Status != "VALID" || st["tmp2"].LagRows != 0 {
		t.Errorf("tmp2 after RefreshView = %+v, want VALID with no lag", st["tmp2"])
	}
	if st["custla"].Status != "STALE" {
		t.Errorf("custla status = %s, want STALE (not refreshed)", st["custla"].Status)
	}
	fresh, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Table.NumRows(), before.Table.NumRows()+1; got != want {
		t.Errorf("refreshed view answered %d rows, want %d", got, want)
	}

	// RefreshAllViews brings the rest up to date.
	if err := s.RefreshAllViews(); err != nil {
		t.Fatal(err)
	}
	for name, v := range s.Staleness() {
		if v.Status != "VALID" || v.LagRows != 0 {
			t.Errorf("%s after RefreshAllViews = %+v, want VALID", name, v)
		}
	}
	if err := s.RefreshView("nonesuch"); err == nil {
		t.Error("RefreshView of an unknown view did not error")
	}
}

// TestScheduledPolicyHonorsInterval: a scheduled view defers between
// interval firings and catches up once the interval elapses.
func TestScheduledPolicyHonorsInterval(t *testing.T) {
	const every = 80 * time.Millisecond
	s, _ := policyFixture(t, Config{DeltaBatch: 1 << 20},
		map[string]RefreshPolicy{"tmp2": ScheduledPolicy(every), "custla": OnCommitPolicy()}, nil)

	ingestPair := func(i int64) {
		t.Helper()
		div, prod := deltaPair(i)
		if err := s.Ingest("Division", div); err != nil {
			t.Fatal(err)
		}
		if err := s.Ingest("Product", prod); err != nil {
			t.Fatal(err)
		}
	}

	// First epoch: the scheduled view has never refreshed, so it is due.
	ingestPair(1)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Staleness()
	if st["tmp2"].Status != "VALID" || st["tmp2"].LagRows != 0 {
		t.Fatalf("first scheduled refresh did not run: %+v", st["tmp2"])
	}

	// Second epoch inside the interval: deferred, lag accrues; the
	// on-commit view refreshes as always.
	ingestPair(2)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st = s.Staleness()
	if st["tmp2"].Status != "STALE" || st["tmp2"].LagRows == 0 {
		t.Fatalf("scheduled view refreshed inside its interval: %+v", st["tmp2"])
	}
	if st["custla"].Status != "VALID" {
		t.Errorf("on-commit view deferred: %+v", st["custla"])
	}

	// After the interval elapses the next epoch catches the view up, even
	// with nothing newly buffered.
	time.Sleep(every + 20*time.Millisecond)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st = s.Staleness()
	if st["tmp2"].Status != "VALID" || st["tmp2"].LagRows != 0 {
		t.Errorf("scheduled view did not catch up after its interval: %+v", st["tmp2"])
	}
}

// TestSLOEpochBreachDegradesThenRecovers: a manual view stale past its
// epoch-budget SLO degrades queries to base relations (fresh answers) and
// recovers to VALID after an explicit refresh; the violation is counted
// once per episode.
func TestSLOEpochBreachDegradesThenRecovers(t *testing.T) {
	o := newEventObserver()
	s, _ := policyFixture(t, Config{DeltaBatch: 1 << 20, Obs: o},
		map[string]RefreshPolicy{"tmp2": ManualPolicy(), "custla": OnCommitPolicy()},
		map[string]FreshnessSLO{"tmp2": {MaxLagEpochs: 1}})
	ctx := context.Background()

	before, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}

	ingestFlush := func(i int64) {
		t.Helper()
		div, prod := deltaPair(i)
		if err := s.Ingest("Division", div); err != nil {
			t.Fatal(err)
		}
		if err := s.Ingest("Product", prod); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// One stale epoch: inside the budget, no violation yet.
	ingestFlush(1)
	st := s.Staleness()
	if st["tmp2"].SLOViolated || st["tmp2"].Degrading {
		t.Fatalf("SLO violated within its epoch budget: %+v", st["tmp2"])
	}

	// Second stale epoch: past MaxLagEpochs — violated, degraded.
	ingestFlush(2)
	st = s.Staleness()
	if !st["tmp2"].SLOViolated || !st["tmp2"].Degrading || st["tmp2"].Status != "STALE" {
		t.Fatalf("SLO not enforced after %d stale epochs: %+v", st["tmp2"].StaleEpochs, st["tmp2"])
	}
	if st["tmp2"].SLOViolations != 1 {
		t.Errorf("violation episodes = %d, want 1", st["tmp2"].SLOViolations)
	}
	if got := o.find(obs.EvServeSLO, "violated"); len(got) != 1 {
		t.Errorf("serve.slo violated events = %d, want 1", len(got))
	}
	if counters, _ := o.reg.Snapshot(); counters[obs.CtrServeSLOViolations] != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrServeSLOViolations, counters[obs.CtrServeSLOViolations])
	}

	// Degraded queries bypass the stale view: the answer includes both
	// delta pairs — fresh from base relations.
	deg, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatal("query over an SLO-violating view was not degraded")
	}
	if got, want := deg.Table.NumRows(), before.Table.NumRows()+2; got != want {
		t.Errorf("degraded answer has %d rows, want the fresh %d", got, want)
	}

	// RefreshView ends the episode: VALID, no violation, queries back on
	// the view.
	if err := s.RefreshView("tmp2"); err != nil {
		t.Fatal(err)
	}
	st = s.Staleness()
	if st["tmp2"].Status != "VALID" || st["tmp2"].SLOViolated || st["tmp2"].Degrading {
		t.Fatalf("view did not recover after refresh: %+v", st["tmp2"])
	}
	if got := o.find(obs.EvServeSLO, "recovered"); len(got) != 1 {
		t.Errorf("serve.slo recovered events = %d, want 1", len(got))
	}
	back, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if back.Degraded {
		t.Error("query still degraded after the view recovered")
	}
	if got, want := back.Table.NumRows(), before.Table.NumRows()+2; got != want {
		t.Errorf("recovered view answers %d rows, want %d", got, want)
	}
	if s.Stats().SLOViolations != 1 {
		t.Errorf("Stats().SLOViolations = %d, want 1", s.Stats().SLOViolations)
	}
}

// TestSLOWallClockBreach: the wall-clock SLO bound breaches live (between
// epochs), not just at epoch boundaries.
func TestSLOWallClockBreach(t *testing.T) {
	const maxLag = 60 * time.Millisecond
	s, _ := policyFixture(t, Config{DeltaBatch: 1 << 20},
		map[string]RefreshPolicy{"tmp2": ManualPolicy(), "custla": OnCommitPolicy()},
		map[string]FreshnessSLO{"tmp2": {MaxLag: maxLag}})
	ctx := context.Background()

	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// The clock ticks past MaxLag with no further epoch: Staleness and the
	// query path must see the breach anyway.
	time.Sleep(maxLag + 30*time.Millisecond)
	st := s.Staleness()
	if !st["tmp2"].SLOViolated || st["tmp2"].Status != "STALE" {
		t.Fatalf("wall-clock SLO not breached live: %+v", st["tmp2"])
	}
	res, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("query not degraded during a live wall-clock breach")
	}

	if err := s.RefreshView("tmp2"); err != nil {
		t.Fatal(err)
	}
	if st := s.Staleness()["tmp2"]; st.SLOViolated || st.Status != "VALID" {
		t.Errorf("view did not recover: %+v", st)
	}
}

// TestStatusReflectsBreakerError: a view whose refreshes keep failing
// reports ERROR (breaker open), then returns to VALID when the fault
// clears and the probe succeeds.
func TestStatusReflectsBreakerError(t *testing.T) {
	inj := fault.New(1, fault.Plan{
		fault.SiteEngineRefresh:            {ErrProb: 1},
		fault.SiteEngineIncrementalRefresh: {ErrProb: 1},
	})
	s, db := policyFixture(t, Config{
		DeltaBatch: 1 << 20,
		Retry:      fastRetry,
		Breaker:    BreakerPolicy{FailureThreshold: 1, Cooldown: time.Millisecond},
		Injector:   inj,
	}, nil, nil)
	db.SetInjector(inj)

	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Customer", custDelta(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Staleness()
	if st["tmp2"].Status != "ERROR" || st["custla"].Status != "ERROR" {
		t.Fatalf("statuses after persistent failures = %s/%s, want ERROR/ERROR",
			st["tmp2"].Status, st["custla"].Status)
	}

	// Fault gone, cooldown elapsed: the probe recomputes and closes the
	// breaker.
	inj.Disarm()
	time.Sleep(2 * time.Millisecond)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for name, v := range s.Staleness() {
		if v.Status != "VALID" {
			t.Errorf("%s status = %s after recovery, want VALID", name, v.Status)
		}
	}
}

// TestCheckpointDeclinedObservability: the silent decline branch now
// counts and emits — satellite of the refresh-policy PR.
func TestCheckpointDeclinedObservability(t *testing.T) {
	o := newEventObserver()
	s, db := policyFixture(t, Config{
		DeltaBatch: 1 << 20,
		Snapshots:  testStore(t),
		Journal:    engine.NewMemJournal(),
		Obs:        o,
	}, nil, nil)
	div, _ := deltaPair(1)
	if err := db.InsertDelta("Division", div); err != nil {
		t.Fatal(err)
	}
	res, err := s.Checkpoint()
	if err != nil || res != nil {
		t.Fatalf("mid-epoch checkpoint = (%v, %v), want (nil, nil)", res, err)
	}
	if counters, _ := o.reg.Snapshot(); counters[obs.CtrServeCheckpointDeclined] != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrServeCheckpointDeclined, counters[obs.CtrServeCheckpointDeclined])
	}
	evs := o.find(obs.EvSnapshotCheckpoint, "declined")
	if len(evs) != 1 {
		t.Fatalf("declined checkpoint events = %d, want 1", len(evs))
	}
	if evs[0].attrs["reason"] != "unlanded deltas" || evs[0].attrs["declines"] != int64(1) {
		t.Errorf("declined event attrs = %+v", evs[0].attrs)
	}
}

// TestAdvisorFlagsSLOViolators: advice lists the views whose SLOs are
// breached at advice time.
func TestAdvisorFlagsSLOViolators(t *testing.T) {
	s, _ := policyFixture(t, Config{DeltaBatch: 1 << 20},
		map[string]RefreshPolicy{"tmp2": ManualPolicy(), "custla": OnCommitPolicy()},
		map[string]FreshnessSLO{"tmp2": {MaxLag: time.Nanosecond}})
	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	st := s.Staleness()
	if !st["tmp2"].SLOViolated {
		t.Fatalf("tmp2 should be violating its nanosecond SLO: %+v", st["tmp2"])
	}
	var violators []string
	for name, v := range st {
		if v.SLOViolated {
			violators = append(violators, name)
		}
	}
	if len(violators) != 1 || violators[0] != "tmp2" {
		t.Errorf("violators = %v, want [tmp2]", violators)
	}
}

// TestClosedPolicyAPIs: the policy surface answers ErrClosed after Close.
func TestClosedPolicyAPIs(t *testing.T) {
	s, _ := policyFixture(t, Config{DeltaBatch: 1 << 20}, nil, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.RefreshView("tmp2"); !errors.Is(err, ErrClosed) {
		t.Errorf("RefreshView after Close = %v, want ErrClosed", err)
	}
	if err := s.RefreshAllViews(); !errors.Is(err, ErrClosed) {
		t.Errorf("RefreshAllViews after Close = %v, want ErrClosed", err)
	}
	if err := s.StreamIngest("Division"); !errors.Is(err, ErrClosed) && err != nil {
		// Zero rows short-circuits; a non-nil error must be ErrClosed.
		t.Errorf("StreamIngest after Close = %v", err)
	}
}
