package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free power-of-two latency histogram: bucket i
// counts observations in [2^(i-1), 2^i) nanoseconds. Quantiles come back as
// the upper bound of the bucket the rank falls in — coarse (within 2×) but
// cheap enough for the submit hot path.
type latencyHist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
}

func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return time.Duration(int64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(int64(1)<<62 - 1)
}
