package serve

import (
	"math/bits"
	"sync/atomic"
	"time"

	"github.com/warehousekit/mvpp/internal/obs"
)

// latencyHist is a lock-free power-of-two latency histogram: bucket i
// counts observations in [2^(i-1), 2^i) nanoseconds. Quantiles come back as
// the upper bound of the bucket the rank falls in — coarse (within 2×) but
// cheap enough for the submit hot path.
type latencyHist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// snapshot exports the all-time histogram in the same shape as the
// windowed one, so the telemetry plane renders both with one code path.
func (h *latencyHist) snapshot() obs.HistSnapshot {
	var out obs.HistSnapshot
	for i := range h.buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	return out
}

// LatencyExemplar links one latency-histogram bucket to a concrete sampled
// query: the most recent sampled observation that fell in the bucket, with
// its causal trace ID. The telemetry plane renders these as OpenMetrics
// exemplars on the bucket lines of mvpp_serve_latency_seconds, so a p99
// spike on a dashboard resolves to a trace retrievable from /traces.
type LatencyExemplar struct {
	// Bucket is the power-of-two bucket index ([2^(i-1), 2^i) nanoseconds);
	// Le is the bucket's upper bound in seconds, matching the rendered
	// histogram's le label.
	Bucket int     `json:"bucket"`
	Le     float64 `json:"le"`
	// Seconds is the observed latency; TraceID/QueryID identify the sampled
	// query that observed it.
	Seconds float64 `json:"seconds"`
	TraceID uint64  `json:"trace_id"`
	QueryID uint64  `json:"query_id"`
}

// exemplarSet keeps one exemplar per latency bucket, overwritten by the
// most recent sampled observation — a single atomic pointer store, paid
// only by sampled queries.
type exemplarSet struct {
	slots [64]atomic.Pointer[LatencyExemplar]
}

func latencyBucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d))
	if idx >= 64 {
		idx = 63
	}
	return idx
}

// bucketUpperSeconds is bucket i's upper bound in seconds — the value the
// telemetry plane renders as the le label.
func bucketUpperSeconds(i int) float64 {
	return float64(int64(1)<<uint(i)) / float64(time.Second)
}

func (e *exemplarSet) record(d time.Duration, traceID, queryID uint64) {
	if e == nil || traceID == 0 {
		return
	}
	idx := latencyBucketOf(d)
	e.slots[idx].Store(&LatencyExemplar{
		Bucket:  idx,
		Le:      bucketUpperSeconds(idx),
		Seconds: d.Seconds(),
		TraceID: traceID,
		QueryID: queryID,
	})
}

// snapshot returns the populated exemplars in bucket order.
func (e *exemplarSet) snapshot() []LatencyExemplar {
	if e == nil {
		return nil
	}
	var out []LatencyExemplar
	for i := range e.slots {
		if ex := e.slots[i].Load(); ex != nil {
			out = append(out, *ex)
		}
	}
	return out
}

func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return time.Duration(int64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(int64(1)<<62 - 1)
}
