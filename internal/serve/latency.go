package serve

import (
	"math/bits"
	"sync/atomic"
	"time"

	"github.com/warehousekit/mvpp/internal/obs"
)

// latencyHist is a lock-free power-of-two latency histogram: bucket i
// counts observations in [2^(i-1), 2^i) nanoseconds. Quantiles come back as
// the upper bound of the bucket the rank falls in — coarse (within 2×) but
// cheap enough for the submit hot path.
type latencyHist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// snapshot exports the all-time histogram in the same shape as the
// windowed one, so the telemetry plane renders both with one code path.
func (h *latencyHist) snapshot() obs.HistSnapshot {
	var out obs.HistSnapshot
	for i := range h.buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	return out
}

func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return time.Duration(int64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(int64(1)<<62 - 1)
}
