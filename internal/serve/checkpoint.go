package serve

import (
	"errors"
	"time"

	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/snapshot"
)

// Snapshot-trigger defaults (see Config.SnapshotEveryEpochs /
// Config.SnapshotRetain).
const (
	DefaultSnapshotEveryEpochs = 8
	DefaultSnapshotRetain      = 3
)

// ErrNoSnapshots reports a Checkpoint call on a server without a store.
var ErrNoSnapshots = errors.New("serve: no snapshot store configured")

// ViewSnapshotInfo is one view's durable-snapshot status.
type ViewSnapshotInfo struct {
	// SnapshotAt is when the view's newest persisted segment was committed.
	SnapshotAt time.Time
	// Bytes is that segment's size.
	Bytes int64
	// Epoch is the maintenance epoch the segment captured.
	Epoch uint64
}

// SnapshotStats reports the server's durable-snapshot state — the last
// checkpoint, the per-view segment ages the telemetry plane turns into
// mv_snapshot_age_seconds, and the recovery that booted this server.
type SnapshotStats struct {
	// Configured reports whether a snapshot store is wired at all.
	Configured bool
	// Generation is the last committed checkpoint's generation (0 before
	// the first).
	Generation uint64
	// LastCheckpointAt/LastBytes/LastDuration describe the last committed
	// checkpoint.
	LastCheckpointAt time.Time
	LastBytes        int64
	LastDuration     time.Duration
	// Checkpoints counts committed checkpoints this process; Skipped counts
	// trigger firings that found unlanded deltas and declined; Failures
	// counts checkpoint attempts that errored.
	Checkpoints, Skipped, Failures int64
	// TruncateFailures counts post-checkpoint journal compactions that
	// failed (the checkpoint itself stands; the journal just stays longer).
	TruncateFailures int64
	// AgedOut counts snapshot generations removed by retention GC.
	AgedOut int64
	// Views is the per-view snapshot status, keyed by view name. Only views
	// captured by the last committed checkpoint appear.
	Views map[string]ViewSnapshotInfo
	// Recovery is how this server booted (nil when the server was built
	// without going through snapshot recovery).
	Recovery *snapshot.RecoveryStats
}

// snapState is the server's checkpoint bookkeeping, guarded by snapMu.
type snapState struct {
	generation  uint64
	lastAt      time.Time
	lastBytes   int64
	lastDur     time.Duration
	checkpoints int64
	skipped     int64
	failures    int64
	truncFails  int64
	agedOut     int64
	views       map[string]ViewSnapshotInfo
}

// SnapshotStats reports the server's durable-snapshot state.
func (s *Server) SnapshotStats() SnapshotStats {
	out := SnapshotStats{Configured: s.snap != nil, Recovery: s.recovery}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	out.Generation = s.snapState.generation
	out.LastCheckpointAt = s.snapState.lastAt
	out.LastBytes = s.snapState.lastBytes
	out.LastDuration = s.snapState.lastDur
	out.Checkpoints = s.snapState.checkpoints
	out.Skipped = s.snapState.skipped
	out.Failures = s.snapState.failures
	out.TruncateFailures = s.snapState.truncFails
	out.AgedOut = s.snapState.agedOut
	if len(s.snapState.views) > 0 {
		out.Views = make(map[string]ViewSnapshotInfo, len(s.snapState.views))
		for k, v := range s.snapState.views {
			out.Views[k] = v
		}
	}
	return out
}

// Checkpoint persists a consistent snapshot generation now: every base
// table plus every healthy, fully-caught-up view, stamped with the journal
// watermark of the last landed epoch. After the commit it compacts the
// delta journal up to that watermark and ages out old generations by the
// retention count. Returns (nil, nil) when the warehouse is mid-epoch
// (unlanded deltas) — checkpointing then would capture view rows the
// watermark does not cover.
func (s *Server) Checkpoint() (*snapshot.CheckpointResult, error) {
	if s.snap == nil {
		return nil, ErrNoSnapshots
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	return s.checkpointLocked()
}

func (s *Server) checkpointLocked() (*snapshot.CheckpointResult, error) {
	// Checkpoints are part of the pipeline's causal story: each attempt
	// gets its own trace-ring entry (kind "checkpoint") when tracing is
	// armed, with declines, segment writes, compaction, and GC as spans.
	ckStart := time.Now()
	var cctx obs.SpanContext
	var ctr *queryTrace
	if s.tracingArmed() {
		cctx = obs.NewTraceContext()
		ctr = s.pipelineTrace("checkpoint", uint64(s.stats.epochs.Load()), cctx)
	}
	// Unlanded deltas mean incremental refreshes may already have folded
	// rows into view tables that the acked watermark does not cover —
	// snapshotting now would double-apply them on recovery. Decline; the
	// next trigger after the epoch lands will succeed.
	if s.enginePendingDeltas() {
		s.snapMu.Lock()
		s.snapState.skipped++
		declined := s.snapState.skipped
		s.snapMu.Unlock()
		// A declined checkpoint must not be silent: repeated declines mean
		// the warehouse never reaches a landed state between triggers (a
		// stuck epoch), and /metrics should show it.
		s.ctrCheckpointDeclined.Inc()
		obs.Emit(s.obsv, obs.EvSnapshotCheckpoint,
			obs.String("action", "declined"),
			obs.String("reason", "unlanded deltas"),
			obs.Int("declines", declined))
		if cctx.Valid() {
			s.traceSpan(ctr, cctx, "snapshot.checkpoint", ckStart, time.Since(ckStart),
				obs.String("outcome", "declined"), obs.String("reason", "unlanded deltas"))
			ctr.finish()
		}
		return nil, nil
	}
	sc := s.sched
	sc.mu.Lock()
	watermark := sc.ackedLSN
	type viewPick struct {
		name  string
		epoch uint64
	}
	var picks []viewPick
	for name, vs := range sc.views {
		// Only views whose stored rows are exactly the base tables at the
		// watermark: no refresh debt, breaker closed. An unhealthy view is
		// simply left out — recovery recomputes it.
		if vs.lag == 0 && vs.state == BreakerClosed {
			picks = append(picks, viewPick{name: name, epoch: vs.epoch})
		}
	}
	sc.mu.Unlock()

	in := snapshot.CheckpointInput{Epoch: s.epoch.Load(), Watermark: watermark}
	for _, name := range s.db.Tables() {
		t, err := s.db.Table(name)
		if err != nil {
			return nil, err
		}
		in.Tables = append(in.Tables, t)
	}
	for _, p := range picks {
		v, err := s.db.View(p.name)
		if err != nil {
			// Dropped between the registry scan and now (advice swap); skip.
			continue
		}
		// Stamp the segment with the view's lineage watermark: the epoch it
		// reached, the acked LSN its rows cover, and the fingerprint of the
		// exact contents being persisted. Recovery seeds the restored view's
		// lineage from this mark, and the chaos suite verifies the restored
		// rows hash back to it.
		table := v.Table()
		in.Views = append(in.Views, snapshot.ViewData{
			Name: p.name, Plan: v.Plan, Table: table, Epoch: p.epoch,
			Lineage: snapshot.LineageMark{
				Epoch:       p.epoch,
				LSN:         watermark,
				Fingerprint: tableFingerprint(table),
			},
		})
	}

	res, err := s.snap.Checkpoint(in)
	if err != nil {
		s.snapMu.Lock()
		s.snapState.failures++
		s.snapMu.Unlock()
		if cctx.Valid() {
			s.traceSpan(ctr, cctx, "snapshot.checkpoint", ckStart, time.Since(ckStart),
				obs.String("outcome", "failed"), obs.String("error", err.Error()))
			ctr.finish()
		}
		// A failed checkpoint is a forensic episode: dump the recent past.
		s.dumpFlight("checkpoint_error",
			obs.Int("epoch", int64(in.Epoch)),
			obs.String("error", err.Error()))
		return nil, err
	}

	// Post-commit housekeeping, both best-effort: the checkpoint stands
	// even if compaction or GC fails.
	truncated := true
	if sc.journal != nil && watermark > 0 {
		tstart := time.Now()
		terr := sc.journal.Truncate(watermark)
		if cctx.Valid() {
			tattrs := []obs.Attr{obs.Int("watermark", int64(watermark))}
			if terr != nil {
				tattrs = append(tattrs, obs.String("error", terr.Error()))
			}
			s.traceSpan(ctr, cctx.NewChild(), "journal.truncate", tstart, time.Since(tstart), tattrs...)
		}
		if terr != nil {
			truncated = false
			s.snapMu.Lock()
			s.snapState.truncFails++
			s.snapMu.Unlock()
			obs.Emit(s.obsv, obs.EvServeJournal,
				obs.String("action", "truncate"), obs.String("error", terr.Error()))
		}
	}
	gcStart := time.Now()
	aged, gcErr := s.snap.GC(s.snapRetain)
	if cctx.Valid() {
		gattrs := []obs.Attr{obs.Int("aged_out", int64(aged))}
		if gcErr != nil {
			gattrs = append(gattrs, obs.String("error", gcErr.Error()))
		}
		s.traceSpan(ctr, cctx.NewChild(), "snapshot.gc", gcStart, time.Since(gcStart), gattrs...)
	}
	if gcErr != nil {
		obs.Emit(s.obsv, obs.EvSnapshotCheckpoint,
			obs.String("gc_error", gcErr.Error()))
	}

	now := time.Now()
	s.snapMu.Lock()
	s.snapState.generation = res.Generation
	s.snapState.lastAt = now
	s.snapState.lastBytes = res.Bytes
	s.snapState.lastDur = res.Duration
	s.snapState.checkpoints++
	s.snapState.agedOut += int64(aged)
	s.snapState.views = make(map[string]ViewSnapshotInfo, len(in.Views))
	for _, v := range in.Views {
		s.snapState.views[v.Name] = ViewSnapshotInfo{
			SnapshotAt: now, Bytes: res.ViewBytes[v.Name], Epoch: v.Epoch,
		}
	}
	s.snapMu.Unlock()
	s.gSnapBytes.Set(float64(res.Bytes))
	s.gSnapGen.Set(float64(res.Generation))

	if cctx.Valid() {
		s.traceSpan(ctr, cctx, "snapshot.checkpoint", ckStart, time.Since(ckStart),
			obs.String("outcome", "ok"),
			obs.Int("generation", int64(res.Generation)),
			obs.Int("epoch", int64(in.Epoch)),
			obs.Int("watermark", int64(watermark)),
			obs.Int("views", int64(len(in.Views))),
			obs.Int("bytes", res.Bytes))
		ctr.finish()
	}

	obs.Emit(s.obsv, obs.EvSnapshotCheckpoint,
		obs.Int("generation", int64(res.Generation)),
		obs.Int("epoch", int64(in.Epoch)),
		obs.Int("watermark", int64(watermark)),
		obs.Int("tables", int64(len(in.Tables))),
		obs.Int("views", int64(len(in.Views))),
		obs.Int("bytes", res.Bytes),
		obs.Int("aged_out", int64(aged)),
		obs.Bool("journal_truncated", truncated))
	return res, nil
}

// maybeCheckpoint fires the epoch-count trigger: after every
// SnapshotEveryEpochs landed epochs, take a checkpoint. Called by runEpoch
// with the maintenance lock released. Idle epochs (nothing staged, nothing
// landed) never advance the epoch counter and so never trigger.
func (s *Server) maybeCheckpoint() {
	if s.snap == nil || s.snapEveryEpochs <= 0 {
		return
	}
	cur := int64(s.epoch.Load())
	last := s.snapEpochs.Load()
	if cur-last < int64(s.snapEveryEpochs) {
		return
	}
	if !s.snapEpochs.CompareAndSwap(last, cur) {
		return // another trigger won the race
	}
	if _, err := s.Checkpoint(); err != nil {
		obs.Emit(s.obsv, obs.EvSnapshotCheckpoint, obs.String("error", err.Error()))
	}
}

// snapshotLoop fires the wall-clock trigger.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			if _, err := s.Checkpoint(); err != nil {
				obs.Emit(s.obsv, obs.EvSnapshotCheckpoint, obs.String("error", err.Error()))
			}
		}
	}
}
