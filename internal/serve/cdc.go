package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/obs"
)

// ErrBackpressure reports that a StreamIngest call was shed: the bounded
// change-feed buffer stayed full past the block deadline. The rows were NOT
// accepted — nothing was journaled — and the caller should retry later.
// Check with errors.Is.
var ErrBackpressure = errors.New("serve: streaming ingest shed: change-feed buffer full past deadline")

// Streaming-ingest defaults (see IngestConfig).
const (
	DefaultStreamBufferRows  = 4096
	DefaultStreamDeadline    = 50 * time.Millisecond
	DefaultStreamGroupLinger = 2 * time.Millisecond
)

// IngestConfig tunes the CDC streaming ingest path (StreamIngest): an
// ordered change feed whose bounded buffer exerts backpressure into callers
// and whose entries are group-committed — journaled and staged as one delta
// batch — so many small ingests share one fsync.
type IngestConfig struct {
	// BufferRows bounds the accepted-but-uncommitted rows in the feed
	// (default DefaultStreamBufferRows). When a StreamIngest would overflow
	// it, the caller blocks until space frees, BlockDeadline elapses
	// (ErrBackpressure), or the server closes.
	BufferRows int
	// BlockDeadline is how long an over-capacity StreamIngest blocks before
	// it is shed with ErrBackpressure (default DefaultStreamDeadline).
	BlockDeadline time.Duration
	// GroupRows is the group-commit threshold: once the feed holds that many
	// rows, the group flushes immediately (default: the scheduler's delta
	// batch size).
	GroupRows int
	// GroupLinger is the longest a partial group waits for company before a
	// parked caller flushes it (default DefaultStreamGroupLinger).
	GroupLinger time.Duration
}

// feedEntry is one accepted StreamIngest call parked in the change feed.
type feedEntry struct {
	table    string
	rows     [][]algebra.Value
	seq      uint64
	accepted time.Time
	// ctx is the batch's root span context and trace its ring entry — both
	// zero/nil when the batch was unsampled. They ride the feed through
	// group commit into the scheduler, so the epoch that lands the batch
	// can adopt (or link) its trace.
	ctx   obs.SpanContext
	trace *queryTrace
	// done receives the entry's group-commit outcome exactly once.
	done chan error
}

// changeFeed is the CDC streaming front-end: a bounded, ordered buffer of
// accepted changes with monotone watermarks (acceptedSeq/committedSeq).
// Entries are group-committed into the scheduler — journaled write-ahead
// and staged for the next maintenance epoch — by whichever caller fills
// the group, lingers past GroupLinger, or by Close's final drain. A caller
// only returns nil after its group committed, so accepted ⇒ journaled.
type changeFeed struct {
	s         *Server
	capRows   int
	deadline  time.Duration
	groupRows int
	linger    time.Duration

	// flushMu serializes group commits, preserving the feed's arrival order
	// all the way into the journal and the scheduler buffer.
	flushMu sync.Mutex

	mu      sync.Mutex
	notFull *sync.Cond
	entries []*feedEntry
	rows    int
	closed  bool
	// acceptedSeq is the last sequence number accepted into the feed;
	// committedSeq the last one group-committed. Both are monotone.
	acceptedSeq  uint64
	committedSeq uint64
}

func newChangeFeed(s *Server, cfg IngestConfig, batch int) *changeFeed {
	f := &changeFeed{
		s:         s,
		capRows:   cfg.BufferRows,
		deadline:  cfg.BlockDeadline,
		groupRows: cfg.GroupRows,
		linger:    cfg.GroupLinger,
	}
	if f.capRows <= 0 {
		f.capRows = DefaultStreamBufferRows
	}
	if f.deadline <= 0 {
		f.deadline = DefaultStreamDeadline
	}
	if f.groupRows <= 0 {
		f.groupRows = batch
	}
	if f.linger <= 0 {
		f.linger = DefaultStreamGroupLinger
	}
	f.notFull = sync.NewCond(&f.mu)
	return f
}

// StreamIngest pushes delta rows through the CDC streaming path: the rows
// enter the bounded change feed (blocking up to the configured deadline
// when it is full, then shedding with ErrBackpressure) and the call returns
// once the group commit containing them has journaled and staged the rows
// for the next maintenance epoch. A nil return therefore guarantees the
// rows are durable in the journal (when one is configured) — accepted ⇒
// journaled — and will land with the next epoch.
func (s *Server) StreamIngest(table string, rows ...[]algebra.Value) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	t, err := s.db.Table(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("serve: row width %d does not match schema width %d of %s",
				len(r), t.Schema.Len(), table)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	// Write-path trace sampling: every Nth StreamIngest call (the query
	// sampling stride; every call when only the flight recorder is armed)
	// mints a root span context that rides the feed into the epoch that
	// lands it. Unsampled calls pay one atomic increment.
	start := time.Now()
	var ictx obs.SpanContext
	var itr *queryTrace
	if s.tracingArmed() {
		id := s.nextIngestID.Add(1)
		every := s.traceEvery
		if every == 0 {
			every = 1
		}
		if (id-1)%every == 0 {
			ictx = obs.NewTraceContext()
			itr = s.pipelineTrace("ingest", id, ictx)
		}
	}
	f := s.feed
	f.mu.Lock()
	if len(rows) > f.capRows {
		f.mu.Unlock()
		return fmt.Errorf("serve: batch of %d rows exceeds the %d-row change-feed buffer: %w",
			len(rows), f.capRows, ErrBackpressure)
	}
	var deadlineAt time.Time
	for f.rows+len(rows) > f.capRows && !f.closed {
		if deadlineAt.IsZero() {
			// First time over capacity: this caller is now blocked by
			// backpressure, counted once per call.
			deadlineAt = time.Now().Add(f.deadline)
			s.stats.streamBlocked.Add(1)
			s.ctrStreamBlocked.Inc()
		}
		if !f.waitUntil(deadlineAt) {
			f.mu.Unlock()
			s.stats.streamShed.Add(1)
			s.ctrStreamShed.Inc()
			obs.Emit(s.obsv, obs.EvServeIngest,
				obs.String("action", "shed"),
				obs.String("table", table),
				obs.Int("rows", int64(len(rows))))
			if ictx.Valid() {
				s.traceSpan(itr, ictx, "ingest.stream", start, time.Since(start),
					obs.String("table", table), obs.Int("rows", int64(len(rows))),
					obs.String("outcome", "shed"))
				itr.finish()
			}
			return ErrBackpressure
		}
	}
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.acceptedSeq++
	e := &feedEntry{
		table:    table,
		rows:     rows,
		seq:      f.acceptedSeq,
		accepted: time.Now(),
		ctx:      ictx,
		trace:    itr,
		done:     make(chan error, 1),
	}
	f.entries = append(f.entries, e)
	f.rows += len(rows)
	full := f.rows >= f.groupRows
	s.gIngestBuffer.Set(float64(f.rows))
	f.mu.Unlock()
	if ictx.Valid() {
		// Admission (including any backpressure wait) is its own span.
		s.traceSpan(itr, ictx.NewChild(), "ingest.accept", start, time.Since(start),
			obs.String("table", table), obs.Int("rows", int64(len(rows))),
			obs.Int("seq", int64(e.seq)))
	}

	if full {
		// This caller filled the group: it leads the commit inline.
		f.flush()
	}
	// Park until the group containing this entry commits; after the linger
	// the caller flushes the partial group itself, so no background ticker
	// is needed and an idle feed costs nothing.
	timer := time.NewTimer(f.linger)
	select {
	case err = <-e.done:
		timer.Stop()
	case <-timer.C:
		f.flush()
		err = <-e.done
	}
	if ictx.Valid() {
		attrs := []obs.Attr{
			obs.String("table", table), obs.Int("rows", int64(len(rows))),
			obs.Int("seq", int64(e.seq)),
		}
		if err != nil {
			attrs = append(attrs, obs.String("error", err.Error()))
		}
		s.traceSpan(itr, ictx, "ingest.stream", start, time.Since(start), attrs...)
		itr.finish()
	}
	return err
}

// waitUntil parks the caller on the not-full condition until a wakeup or
// the deadline. Caller holds f.mu; returns false once the deadline passed.
func (f *changeFeed) waitUntil(deadline time.Time) bool {
	remain := time.Until(deadline)
	if remain <= 0 {
		return false
	}
	t := time.AfterFunc(remain, func() {
		// Lock-step with the waiter so the broadcast cannot fire between its
		// predicate check and its park.
		f.mu.Lock()
		//lint:ignore SA2001 the empty critical section orders the broadcast after the waiter parks
		f.mu.Unlock()
		f.notFull.Broadcast()
	})
	f.notFull.Wait()
	t.Stop()
	return time.Now().Before(deadline)
}

// flush group-commits everything currently buffered: one journal append and
// one scheduler staging per table, in feed arrival order, then releases
// every parked caller with its outcome.
func (f *changeFeed) flush() {
	f.flushMu.Lock()
	defer f.flushMu.Unlock()
	f.mu.Lock()
	entries := f.entries
	if len(entries) == 0 {
		f.mu.Unlock()
		return
	}
	f.entries = nil
	f.rows = 0
	f.s.gIngestBuffer.Set(0)
	f.notFull.Broadcast()
	f.mu.Unlock()
	f.deliver(entries)
}

// deliver journals and stages one stolen group, then answers its entries.
// Caller holds flushMu (ordering) but not f.mu (the buffer is already free).
func (f *changeFeed) deliver(entries []*feedEntry) {
	s := f.s
	var order []string
	byTable := make(map[string][][]algebra.Value)
	for _, e := range entries {
		if _, seen := byTable[e.table]; !seen {
			order = append(order, e.table)
		}
		byTable[e.table] = append(byTable[e.table], e.rows...)
	}
	errs := make(map[string]error, len(order))
	for _, table := range order {
		// Sampled entries' span contexts ride into the scheduler with the
		// batch, so the epoch that lands it can adopt/link their traces.
		var refs []ingestTraceRef
		for _, e := range entries {
			if e.table == table && e.ctx.Valid() {
				refs = append(refs, ingestTraceRef{ctx: e.ctx, trace: e.trace})
			}
		}
		gstart := time.Now()
		lsn, err := s.ingest(table, byTable[table], true, "stream", refs...)
		errs[table] = err
		gdur := time.Since(gstart)
		for _, ref := range refs {
			gctx := ref.ctx.NewChild()
			gattrs := []obs.Attr{
				obs.String("table", table),
				obs.Int("rows", int64(len(byTable[table]))),
				obs.Int("entries", int64(len(entries))),
			}
			if err != nil {
				gattrs = append(gattrs, obs.String("error", err.Error()))
			}
			s.traceSpan(ref.trace, gctx, "ingest.group_commit", gstart, gdur, gattrs...)
			if lsn > 0 {
				s.traceSpan(ref.trace, gctx.NewChild(), "journal.append", gstart, gdur,
					obs.Int("lsn", int64(lsn)))
			}
		}
	}

	now := time.Now()
	var rows int64
	for _, e := range entries {
		if errs[e.table] == nil {
			rows += int64(len(e.rows))
			s.stats.streamLag.record(now.Sub(e.accepted))
		}
	}
	maxSeq := entries[len(entries)-1].seq
	f.mu.Lock()
	if maxSeq > f.committedSeq {
		f.committedSeq = maxSeq
	}
	f.mu.Unlock()
	if rows > 0 {
		s.stats.streamRows.Add(rows)
		s.stats.streamGroups.Add(1)
		s.ctrStreamRows.Add(rows)
		s.ctrStreamGroups.Inc()
		obs.Emit(s.obsv, obs.EvServeIngest,
			obs.String("action", "group_commit"),
			obs.Int("rows", rows),
			obs.Int("entries", int64(len(entries))),
			obs.Int("committed_seq", int64(maxSeq)))
	}
	// Release the parked callers only after all accounting: a caller's nil
	// return means its rows are journaled and staged.
	for _, e := range entries {
		e.done <- errs[e.table]
	}
}

// shutdown is Close's feed drain: refuse new entries, wake blocked callers
// (they see the closed feed and return ErrClosed), and flush the final
// partial group so every already-accepted entry is journaled and answered.
// Runs before the server's closed channel closes, so the final group commit
// still lands in the scheduler buffer (and the journal replays it next boot).
func (f *changeFeed) shutdown() {
	f.flushMu.Lock()
	defer f.flushMu.Unlock()
	f.mu.Lock()
	f.closed = true
	entries := f.entries
	f.entries = nil
	f.rows = 0
	f.notFull.Broadcast()
	f.mu.Unlock()
	if len(entries) > 0 {
		f.deliver(entries)
	}
}

// buffered reports the feed's current row occupancy.
func (f *changeFeed) buffered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rows
}

// IngestWatermarks reports the change feed's monotone watermarks: the last
// sequence accepted into the feed and the last sequence group-committed
// (journaled + staged). accepted-committed entries are in flight.
func (s *Server) IngestWatermarks() (accepted, committed uint64) {
	f := s.feed
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.acceptedSeq, f.committedSeq
}
