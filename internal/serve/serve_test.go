package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
)

// paperServeDB is the paper's five relations at 1% scale.
func paperServeDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := datagen.PaperDB(10, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// laJoinPlan is Product ⋈ σ(city='LA')(Division) — the paper's tmp2.
func laJoinPlan(t *testing.T, db *engine.DB) algebra.Node {
	t.Helper()
	pd, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	div, err := db.Table("Division")
	if err != nil {
		t.Fatal(err)
	}
	sel := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	return algebra.NewJoin(algebra.NewScan("Product", pd.Schema), sel,
		[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}})
}

// laCustomerPlan is σ(city='LA')(Customer) — touches only Customer.
func laCustomerPlan(t *testing.T, db *engine.DB) algebra.Node {
	t.Helper()
	cust, err := db.Table("Customer")
	if err != nil {
		t.Fatal(err)
	}
	return algebra.NewSelect(algebra.NewScan("Customer", cust.Schema),
		algebra.Eq(algebra.Ref("Customer", "city"), algebra.StringVal("LA")))
}

// serveFixture materializes tmp2 (incremental) and custla (recompute) and
// wires a server over them.
func serveFixture(t *testing.T, cfg Config) (*Server, *engine.DB) {
	t.Helper()
	db := paperServeDB(t)
	join := laJoinPlan(t, db)
	cust := laCustomerPlan(t, db)
	if _, err := db.Materialize("tmp2", join); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("custla", cust); err != nil {
		t.Fatal(err)
	}
	cfg.DB = db
	cfg.Queries = []QuerySpec{
		{Name: "QLA", Plan: join, Frequency: 10},
		{Name: "QCust", Plan: cust, Frequency: 5},
	}
	cfg.Views = []ViewSpec{
		{Name: "tmp2", Strategy: core.MaintIncremental},
		{Name: "custla", Strategy: core.MaintRecompute},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, db
}

// deltaPair returns a matching (Division, Product) delta: a new LA division
// and a product in it, so tmp2 gains exactly one row.
func deltaPair(i int64) (div, prod []algebra.Value) {
	div = []algebra.Value{algebra.IntVal(900000 + i), algebra.StringVal("division-Δ"), algebra.StringVal("LA")}
	prod = []algebra.Value{algebra.IntVal(800000 + i), algebra.StringVal("product-Δ"), algebra.IntVal(900000 + i)}
	return div, prod
}

// TestServeCacheHitAndEpochInvalidation: the second identical query is a
// cache hit with zero I/O; a maintenance epoch invalidates it and the next
// execution sees the new rows.
func TestServeCacheHitAndEpochInvalidation(t *testing.T) {
	s, _ := serveFixture(t, Config{DeltaBatch: 1 << 20})
	ctx := context.Background()

	r1, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Reads == 0 {
		t.Fatalf("first execution should miss the cache and cost I/O: cached=%v reads=%d", r1.Cached, r1.Reads)
	}
	r2, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Reads != 0 {
		t.Fatalf("second execution should hit the cache for free: cached=%v reads=%d", r2.Cached, r2.Reads)
	}
	if r2.Table != r1.Table {
		t.Error("cache hit returned a different table than was cached")
	}

	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d after one flush, want 1", s.Epoch())
	}

	r3, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("epoch bump did not invalidate the cached result")
	}
	if want := r1.Table.NumRows() + 1; r3.Table.NumRows() != want {
		t.Errorf("after the delta epoch QLA has %d rows, want %d", r3.Table.NumRows(), want)
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Errorf("stats: hits=%d misses=%d, want 1/2", st.CacheHits, st.CacheMisses)
	}
	if got := st.CacheHitRate(); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("hit rate %g, want 1/3", got)
	}
}

// TestSchedulerStrategyDispatch: an epoch refreshes incremental-strategy
// views by delta propagation and recompute-strategy views by recomputation,
// and — fu-driven — leaves views of untouched relations alone.
func TestSchedulerStrategyDispatch(t *testing.T) {
	s, db := serveFixture(t, Config{DeltaBatch: 1 << 20})
	ctx := context.Background()

	// Epoch 1: only Product/Division change → only tmp2 refreshes, and it
	// refreshes incrementally.
	div, prod := deltaPair(1)
	if err := s.Ingest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("Product", prod); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.IncrementalRefreshes != 1 || st.Recomputes != 0 {
		t.Fatalf("epoch 1: incremental=%d recompute=%d, want 1/0", st.IncrementalRefreshes, st.Recomputes)
	}
	stale := s.Staleness()
	if stale["tmp2"].Epoch != 1 {
		t.Errorf("tmp2 refreshed at epoch %d, want 1", stale["tmp2"].Epoch)
	}
	if stale["custla"].Epoch != 0 || stale["custla"].PendingRows != 0 {
		t.Errorf("custla should be untouched: %+v", stale["custla"])
	}

	// Epoch 2: a Customer delta → only custla refreshes, by recomputation.
	if err := s.Ingest("Customer",
		[]algebra.Value{algebra.IntVal(700001), algebra.StringVal("customer-Δ"), algebra.StringVal("LA")}); err != nil {
		t.Fatal(err)
	}
	if got := s.Staleness()["custla"].PendingRows; got != 1 {
		t.Errorf("custla pending rows = %d before the epoch, want 1", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.IncrementalRefreshes != 1 || st.Recomputes != 1 {
		t.Fatalf("epoch 2: incremental=%d recompute=%d, want 1/1", st.IncrementalRefreshes, st.Recomputes)
	}
	if got := s.Staleness()["custla"]; got.Epoch != 2 || got.PendingRows != 0 {
		t.Errorf("custla after its epoch: %+v", got)
	}

	// Both views must equal a from-scratch recompute of their plans.
	for _, q := range []string{"QLA", "QCust"} {
		res, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := db.Execute(s.queries[q].spec.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table.NumRows() != direct.Table.NumRows() {
			t.Errorf("%s: served %d rows, direct execution %d", q, res.Table.NumRows(), direct.Table.NumRows())
		}
	}
}

// TestAdmissionControl fills the bounded queue with no workers draining it:
// a second submission must block (backpressure) and reject once its context
// expires, and a waiting caller whose context dies is rejected too.
func TestAdmissionControl(t *testing.T) {
	db := paperServeDB(t)
	plan := laCustomerPlan(t, db)
	s, err := newServer(Config{DB: db, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	first := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx1, plan)
		first <- err
	}()
	// Wait for the first submission to occupy the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first submission never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := s.Submit(ctx2, plan); !errors.Is(err, ErrRejected) {
		t.Fatalf("full queue + expired context: got %v, want ErrRejected", err)
	}

	cancel1()
	if err := <-first; !errors.Is(err, ErrRejected) {
		t.Fatalf("cancelled waiter: got %v, want ErrRejected", err)
	}

	st := s.Stats()
	if st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", st.Rejected)
	}
	if st.Backpressured != 1 {
		t.Errorf("backpressured = %d, want 1", st.Backpressured)
	}
}

// TestObservedFrequencies: counts scale so the observed workload has the
// same total volume as the designed one.
func TestObservedFrequencies(t *testing.T) {
	s, _ := serveFixture(t, Config{DeltaBatch: 1 << 20})
	ctx := context.Background()

	// Nothing observed yet → design-time frequencies.
	obs0 := s.ObservedFrequencies()
	if obs0["QLA"] != 10 || obs0["QCust"] != 5 {
		t.Fatalf("before any query: %v, want the designed frequencies", obs0)
	}

	for i := 0; i < 3; i++ {
		if _, err := s.Query(ctx, "QLA"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query(ctx, "QCust"); err != nil {
		t.Fatal(err)
	}
	got := s.ObservedFrequencies()
	// Designed total 15, observed 3:1 → QLA 11.25, QCust 3.75.
	if math.Abs(got["QLA"]-11.25) > 1e-9 || math.Abs(got["QCust"]-3.75) > 1e-9 {
		t.Errorf("observed frequencies %v, want QLA=11.25 QCust=3.75", got)
	}
	if math.Abs((got["QLA"]+got["QCust"])-15) > 1e-9 {
		t.Errorf("observed total %g, want the designed 15", got["QLA"]+got["QCust"])
	}
}

// TestAdviseRequiresMVPP: the advisor is optional equipment.
func TestAdviseRequiresMVPP(t *testing.T) {
	s, _ := serveFixture(t, Config{DeltaBatch: 1 << 20})
	if _, err := s.Advise(); err == nil {
		t.Fatal("Advise without an MVPP should error")
	}
}

// TestIngestValidation: unknown tables and malformed rows are rejected at
// the door, not at epoch time.
func TestIngestValidation(t *testing.T) {
	s, _ := serveFixture(t, Config{DeltaBatch: 1 << 20})
	if err := s.Ingest("Nope", []algebra.Value{algebra.IntVal(1)}); err == nil {
		t.Error("ingest into an unknown table should fail")
	}
	if err := s.Ingest("Customer", []algebra.Value{algebra.IntVal(1)}); err == nil {
		t.Error("ingest of a short row should fail")
	}
}

// TestServeConcurrentClients hammers the server from many client
// goroutines while deltas stream in and epochs fire — the race test for the
// whole serving layer (run under -race).
func TestServeConcurrentClients(t *testing.T) {
	s, db := serveFixture(t, Config{Workers: 4, DeltaBatch: 4})
	ctx := context.Background()

	const clients = 6
	const perClient = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			names := []string{"QLA", "QCust"}
			for i := 0; i < perClient; i++ {
				if _, err := s.Query(ctx, names[(c+i)%2]); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 20; i++ {
			div, prod := deltaPair(i)
			if err := s.Ingest("Division", div); err != nil {
				errs <- err
				return
			}
			if err := s.Ingest("Product", prod); err != nil {
				errs <- err
				return
			}
			if i%5 == 4 {
				if err := s.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Settle and verify the maintained views equal a recompute.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"QLA", "QCust"} {
		res, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := db.Execute(s.queries[q].spec.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table.NumRows() != direct.Table.NumRows() {
			t.Errorf("%s diverged after concurrent epochs: served %d rows, direct %d",
				q, res.Table.NumRows(), direct.Table.NumRows())
		}
	}
	st := s.Stats()
	if st.Queries < clients*perClient {
		t.Errorf("stats lost queries: %d < %d", st.Queries, clients*perClient)
	}
	if st.Epochs == 0 {
		t.Error("no maintenance epoch ran despite batched ingest")
	}
}

// TestResultCacheLRU: capacity bounds the cache and eviction is
// least-recently-used; negative capacity disables caching entirely.
func TestResultCacheLRU(t *testing.T) {
	mk := func(name string) *engine.Table {
		return engine.NewTable(name, algebra.NewSchema(algebra.Column{Relation: "t", Name: "a", Type: algebra.TypeInt}), 10)
	}
	c := newResultCache(2)
	c.put("a", 0, mk("a"))
	c.put("b", 0, mk("b"))
	if _, _, ok := c.get("a", 0); !ok { // touch a → b is now LRU
		t.Fatal("a should be cached")
	}
	c.put("c", 0, mk("c"))
	if _, _, ok := c.get("b", 0); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, _, ok := c.get("a", 0); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, _, ok := c.get("a", 1); ok {
		t.Error("an epoch-1 lookup must not return the epoch-0 entry")
	}

	off := newResultCache(-1)
	off.put("x", 0, mk("x"))
	if _, _, ok := off.get("x", 0); ok {
		t.Error("disabled cache returned a hit")
	}
	if off.len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

// TestLatencyHistogramQuantiles sanity-checks the power-of-two quantile
// walk.
func TestLatencyHistogramQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 90; i++ {
		h.record(100 * time.Nanosecond) // bucket upper bound 127ns
	}
	for i := 0; i < 10; i++ {
		h.record(time.Millisecond)
	}
	if p50 := h.quantile(0.50); p50 > 127*time.Nanosecond {
		t.Errorf("p50 = %v, want ≤ 127ns", p50)
	}
	p99 := h.quantile(0.99)
	if p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want around 1ms", p99)
	}
}

// TestSubmitAdHocSubsumption: an ad-hoc plan not in the workload is
// answered through predicate subsumption over a stored view.
func TestSubmitAdHocSubsumption(t *testing.T) {
	s, db := serveFixture(t, Config{DeltaBatch: 1 << 20})
	ctx := context.Background()

	cust, err := db.Table("Customer")
	if err != nil {
		t.Fatal(err)
	}
	// σ(city='LA' ∧ Cid < 50)(Customer) ⇒ answerable from custla.
	adhoc := algebra.NewSelect(algebra.NewScan("Customer", cust.Schema),
		algebra.NewAnd(
			algebra.Eq(algebra.Ref("Customer", "city"), algebra.StringVal("LA")),
			algebra.Compare(
				algebra.ColOperand(algebra.Ref("Customer", "Cid")),
				algebra.OpLt,
				algebra.LitOperand(algebra.IntVal(50)))))
	res, err := s.Submit(ctx, adhoc)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.Execute(adhoc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != direct.Table.NumRows() {
		t.Fatalf("ad-hoc result %d rows, direct %d", res.Table.NumRows(), direct.Table.NumRows())
	}
	// The rewritten execution must be cheaper than scanning Customer: it
	// reads the much smaller custla view.
	if res.Reads >= direct.TotalReads() {
		t.Errorf("subsumed execution read %d blocks, direct %d — view not used", res.Reads, direct.TotalReads())
	}
}
