// Package serve is the warehouse's concurrent serving layer: it takes a
// finished materialized-view design (a set of views stored in an engine.DB
// plus the workload's query plans) and runs it as a live system — many
// client goroutines asking queries while base-table deltas stream in and a
// background scheduler keeps the views fresh.
//
// The package is built from four cooperating pieces:
//
//   - a query router (Submit/Query): a bounded worker pool executes plans
//     rewritten over the materialized views; a full queue exerts
//     backpressure, and a caller whose context expires while waiting is
//     rejected — admission control;
//   - a result cache keyed by the plan's structural key, tagged with the
//     refresh epoch at execution time and invalidated wholesale when a
//     maintenance epoch lands;
//   - a maintenance scheduler (Ingest/Flush): delta rows accumulate per
//     base table and, once a batch fills (or a timer fires), one epoch runs —
//     deltas are staged, affected views refresh by their design-time
//     strategy (incremental delta propagation or full recompute), the
//     deltas fold into the base tables, and the epoch counter advances;
//   - an advisor (Advise/ApplyAdvice): observed per-query frequencies are
//     re-fed to the paper's Figure 9 selection, and a proposed new view set
//     can be hot-swapped into the running warehouse.
//
// The serving layer is fault-tolerant: every refresh step retries with
// exponential backoff, a view whose incremental refresh keeps failing falls
// back to full recomputation, a per-view circuit breaker degrades queries
// to the base-relation plan when a view is unhealthy or too stale (with
// half-open probing for recovery), worker and scheduler panics are
// recovered, and an optional write-ahead delta journal makes ingestion
// crash-safe — no acknowledged delta is lost between ingestion and the
// epoch that lands it. Faults are injected for testing via internal/fault
// (Config.Injector).
//
// Concurrency: readers run against immutable table epochs (the engine's
// many-readers/one-maintainer contract); everything maintenance-side —
// scheduler epochs and advice swaps — serializes on one mutex, making the
// serving layer as a whole safe for any number of concurrent clients.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/costaudit"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/snapshot"
)

// Serving-layer errors.
var (
	// ErrClosed reports a submission to a closed server.
	ErrClosed = errors.New("serve: server is closed")
	// ErrRejected reports that admission control turned the query away: the
	// worker queue was full and the caller's context expired while waiting
	// for a slot or for the result.
	ErrRejected = errors.New("serve: query rejected")
)

// Defaults for the zero values of Config.
const (
	DefaultWorkers       = 4
	DefaultQueueDepth    = 64
	DefaultCacheCapacity = 256
	DefaultDeltaBatch    = 256
	// DefaultStatsWindow is the rolling-stats window in seconds.
	DefaultStatsWindow = 60
	// DefaultTraceRing bounds the sampled-trace ring when trace sampling is
	// enabled without an explicit ring size.
	DefaultTraceRing = 64
)

// QuerySpec is one named workload query the server answers.
type QuerySpec struct {
	Name string
	Plan algebra.Node
	// Frequency is the design-time access frequency fq; the advisor scales
	// observed counts against the sum of these.
	Frequency float64
}

// ViewSpec is one materialized view the server maintains. The view must
// already be materialized in the DB.
type ViewSpec struct {
	Name string
	// Strategy is the design-time maintenance plan: MaintIncremental views
	// refresh by delta propagation, MaintRecompute views by recomputation.
	Strategy core.MaintenanceStrategy
	// Policy decides when the scheduler refreshes the view (manual,
	// on-commit, scheduled, streaming). The zero value takes
	// Config.DefaultPolicy, then on-commit — the legacy behavior.
	Policy RefreshPolicy
	// SLO bounds how far the view may lag before its queries degrade to
	// base-relation plans. The zero value takes Config.DefaultSLO (no SLO
	// when that is zero too).
	SLO FreshnessSLO
}

// Config assembles a Server.
type Config struct {
	// DB is the warehouse: base tables plus the design's materialized
	// views. The server becomes the DB's single maintainer; clients must
	// only read through the server.
	DB *engine.DB
	// Queries is the named workload.
	Queries []QuerySpec
	// Views is the materialized set and its maintenance strategies.
	Views []ViewSpec
	// MVPP, Model and SelectOpts configure the advisor (optional: without
	// an MVPP and model, Advise returns an error and everything else
	// works).
	MVPP       *core.MVPP
	Model      cost.Model
	SelectOpts core.SelectOptions
	// Workers is the router's worker-pool size (default DefaultWorkers).
	Workers int
	// QueueDepth bounds the admission queue (default DefaultQueueDepth).
	QueueDepth int
	// CacheCapacity bounds the result cache in entries (default
	// DefaultCacheCapacity; negative disables caching).
	CacheCapacity int
	// DeltaBatch is how many ingested rows trigger a maintenance epoch
	// (default DefaultDeltaBatch).
	DeltaBatch int
	// RefreshInterval, when positive, also fires an epoch periodically even
	// if the batch has not filled.
	RefreshInterval time.Duration
	// Retry bounds the backoff loop around every refresh step; zero values
	// take the defaults.
	Retry RetryPolicy
	// Breaker configures the per-view circuit breaker; zero values take the
	// defaults (StalenessBound 0 disables the staleness trigger).
	Breaker BreakerPolicy
	// DefaultPolicy is the refresh policy for views whose ViewSpec leaves it
	// unset (zero: on-commit).
	DefaultPolicy RefreshPolicy
	// DefaultSLO is the freshness SLO for views whose ViewSpec leaves it
	// unset (zero: no SLO).
	DefaultSLO FreshnessSLO
	// Ingest tunes the CDC streaming path (StreamIngest): buffer bound,
	// backpressure deadline, group-commit threshold and linger. Zero values
	// take the defaults.
	Ingest IngestConfig
	// Journal, when set, write-ahead-logs every ingested delta batch: rows
	// are journaled before they are buffered, acknowledged only after their
	// maintenance epoch lands them in the base tables, and replayed by New
	// when a server is rebuilt over the same journal after a crash. The
	// caller owns the journal's lifetime (the server never closes it).
	Journal engine.DeltaJournal
	// Injector, when set, arms fault injection at the serving layer's sites
	// (worker execution, epoch start). Arm the same injector on the DB via
	// SetInjector to cover the engine sites too. Nil injects nothing.
	Injector *fault.Injector
	// StatsWindow is the rolling-stats window in seconds for the Window*
	// fields of Stats (QPS, hit rate, latency quantiles over the last N
	// seconds). Zero takes DefaultStatsWindow; negative disables windowed
	// aggregation entirely.
	StatsWindow int
	// TraceSampleEvery enables trace correlation: every submission gets a
	// query ID and every Nth query (1 = all) records its lifecycle stages
	// into a bounded ring served by RecentTraces, mirroring each stage to
	// Obs as an EvServeQuery event. Zero disables sampling — no IDs are
	// minted and the hot path pays nothing.
	TraceSampleEvery int
	// TraceRingSize bounds the sampled-trace ring (default DefaultTraceRing).
	TraceRingSize int
	// FlightDir is where flight-recorder dumps are written when an SLO
	// breach, breaker-open, or checkpoint-failure episode latches. Empty
	// keeps dumps in memory only (served by FlightDumps and /flight).
	FlightDir string
	// FlightRecorderSize bounds the flight recorder's span/event ring
	// (default 1024). The recorder is armed whenever trace sampling is on or
	// FlightDir is set; with both off it is nil and the write path records
	// nothing.
	FlightRecorderSize int
	// Obs receives serving spans, events, counters and gauges. Nil
	// disables instrumentation.
	Obs obs.Observer
	// Audit, when set, is the cost-accountability ledger: predictions are
	// registered for every query class and view at construction and after
	// every advice swap, and every cache-miss execution and view refresh
	// records its measured block I/O. Nil disables auditing.
	Audit *costaudit.Ledger
	// AuditAutoApply lets a drift-triggered recalibration apply its advice
	// to the running warehouse (otherwise the advice is only recorded; see
	// LastRecalibration).
	AuditAutoApply bool
	// AuditSkew multiplies every registered prediction — a test hook
	// simulating a miscalibrated cost model. 0 means 1 (no skew).
	AuditSkew float64
	// AuditSkewViews multiplies only the named views' refresh predictions
	// (recompute and incremental), on top of AuditSkew — a test hook for
	// per-operator cost-constant drift.
	AuditSkewViews map[string]float64
	// Snapshots, when set, is the durable snapshot store: the server
	// checkpoints base tables and healthy views into it (triggered by epoch
	// count and/or wall-clock interval), compacting the delta journal up to
	// the acked watermark after each commit. Nil disables checkpointing.
	Snapshots *snapshot.Store
	// SnapshotEveryEpochs takes a checkpoint after every N landed
	// maintenance epochs (default DefaultSnapshotEveryEpochs; negative
	// disables the epoch-count trigger).
	SnapshotEveryEpochs int
	// SnapshotInterval, when positive, also checkpoints on a wall-clock
	// timer regardless of epoch activity.
	SnapshotInterval time.Duration
	// SnapshotRetain is how many committed snapshot generations GC keeps
	// (default DefaultSnapshotRetain, minimum 1).
	SnapshotRetain int
	// Recovery, when the DB was built by snapshot.Recover, carries the
	// recovery stats: the server resumes the snapshot's maintenance epoch,
	// seeds per-view staleness from the snapshot commit time, and replays
	// only journal records past the recovered watermark.
	Recovery *snapshot.RecoveryStats
}

// Result is one answered query.
type Result struct {
	// Table holds the result rows (an immutable epoch snapshot).
	Table *engine.Table
	// Reads is the block-read cost of the execution (0 on a cache hit).
	Reads int64
	// Cached reports whether the result came from the cache.
	Cached bool
	// Degraded reports that the circuit breaker answered this query from
	// base relations because a materialized view it would have used is
	// unhealthy or beyond its staleness bound. Degraded results are always
	// fresh (they see every applied delta) but cost the paper's Ca(q)
	// instead of the view-assisted cost.
	Degraded bool
	// Epoch is the refresh epoch the result was computed under.
	Epoch uint64
	// Latency is the wall-clock time from submission to answer.
	Latency time.Duration
}

type request struct {
	ctx  context.Context
	plan algebra.Node
	key  string
	// name is the workload query class ("" for ad-hoc plans); the worker
	// records the execution's measured I/O against it in the cost ledger.
	name string
	// qt is the sampled query's live trace (nil when unsampled); the worker
	// appends the execute/degraded stages to it.
	qt   *queryTrace
	done chan response
	// rejected dedupes admission-control accounting: the submitter (context
	// expired while waiting) and the worker (context expired while queued)
	// may both notice the rejection, but it is counted once.
	rejected atomic.Bool
}

type response struct {
	res *Result
	err error
}

type queryState struct {
	spec     QuerySpec
	observed atomic.Int64
}

// Server is the running serving layer. Create with New, stop with Close.
// All exported methods are safe for concurrent use.
type Server struct {
	db      *engine.DB
	queries map[string]*queryState
	order   []string

	mvpp       *core.MVPP
	model      cost.Model
	selectOpts core.SelectOptions

	cache *resultCache
	epoch atomic.Uint64

	queue     chan *request
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	// inflight counts Submit calls between entry and return; Close drains
	// stragglers (admitted after the workers exited) until it reaches zero.
	inflight atomic.Int64
	// baseCtx is cancelled by Close so retry backoff sleeps abort promptly.
	baseCtx context.Context
	cancel  context.CancelFunc

	inj   *fault.Injector
	retry RetryPolicy
	// jmu/jrng is the seeded jitter source for retry backoff.
	jmu  sync.Mutex
	jrng *rand.Rand

	// maintMu serializes everything maintenance-side — scheduler epochs and
	// advice swaps — honoring the engine's one-maintainer contract.
	maintMu sync.Mutex
	// advMu serializes advisor calls (ReselectFrequencies temporarily
	// mutates the MVPP's frequencies and weights).
	advMu sync.Mutex

	sched *scheduler
	// feed is the CDC streaming front-end (StreamIngest); always present,
	// sized by Config.Ingest.
	feed *changeFeed

	// Cost accountability (audit nil when auditing is off — every call
	// site no-ops). auditMu guards the pricer, the drift-episode latch,
	// and the last recalibration advice.
	audit          *costaudit.Ledger
	auditAutoApply bool
	auditSkew      float64
	auditSkewViews map[string]float64
	auditMu        sync.Mutex
	auditPricer    *costaudit.Pricer
	recalHandled   map[string]bool
	lastRecal      *Advice

	start time.Time
	stats serverStats

	// Windowed aggregation (nil when Config.StatsWindow < 0): rolling
	// per-second rings answering "what happened over the last N seconds".
	winQueries     *obs.WindowCounter
	winHits        *obs.WindowCounter
	winRefreshFail *obs.WindowCounter
	winLat         *obs.WindowHist

	// Trace correlation (nil/0 when Config.TraceSampleEvery is 0).
	nextQueryID atomic.Uint64
	traceEvery  uint64
	traces      *traceRing
	// nextIngestID numbers StreamIngest calls for write-path sampling
	// (same stride as query sampling).
	nextIngestID atomic.Uint64
	// flight is the always-on forensic ring (nil when tracing is off and no
	// FlightDir is set); epochLink joins sampled queries to the pipeline
	// trace of the epoch they read; exemplars links latency buckets to
	// sampled trace IDs (nil when sampling is off).
	flight    *obs.FlightRecorder
	epochLink atomic.Pointer[epochTraceLink]
	exemplars *exemplarSet

	// Durable snapshots (snap nil when checkpointing is off). snapEpochs
	// counts landed epochs toward the epoch-count trigger; snapMu guards
	// snapState; recovery is how this server booted (nil without recovery).
	snap            *snapshot.Store
	snapEveryEpochs int
	snapRetain      int
	snapEpochs      atomic.Int64
	snapMu          sync.Mutex
	snapState       snapState
	recovery        *snapshot.RecoveryStats

	obsv                                              obs.Observer
	ctrQueries, ctrHits, ctrMisses, ctrRejected       *obs.Counter
	ctrEpochs, ctrDeltaRows, ctrRefreshR, ctrRefreshW *obs.Counter
	ctrRetries, ctrRefreshFail, ctrFallbacks          *obs.Counter
	ctrBreakerTrips, ctrDegraded, ctrPanics           *obs.Counter
	ctrReplayed                                       *obs.Counter
	ctrCostObs, ctrCostDrift, ctrRecal                *obs.Counter
	ctrStreamRows, ctrStreamGroups                    *obs.Counter
	ctrStreamShed, ctrStreamBlocked                   *obs.Counter
	ctrSLOViolations, ctrCheckpointDeclined           *obs.Counter
	ctrFlightDumps                                    *obs.Counter
	gQueueDepth, gStaleRows, gUnhealthy               *obs.Gauge
	gSnapBytes, gSnapGen, gIngestBuffer               *obs.Gauge
}

type serverStats struct {
	queries, hits, misses, rejected, backpressured atomic.Int64
	epochs, incRefreshes, recomputes, deltaRows    atomic.Int64
	refreshReads, refreshWrites                    atomic.Int64
	retries, refreshFailures, fallbacks            atomic.Int64
	breakerTrips, degraded, panics, replayedRows   atomic.Int64
	costObservations, costDrifts, recalibrations   atomic.Int64
	streamRows, streamGroups                       atomic.Int64
	streamShed, streamBlocked                      atomic.Int64
	sloViolations                                  atomic.Int64
	flightDumps                                    atomic.Int64
	lat                                            latencyHist
	// streamLag is the accepted→group-committed latency of streamed rows.
	streamLag latencyHist
}

// New builds and starts a server: the worker pool and the maintenance
// scheduler begin running immediately. When Config.Journal holds
// unacknowledged delta batches from a crashed predecessor, they are
// re-ingested before serving starts and land with the first epoch.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	s.startWorkers(workersOf(cfg))
	s.sched.startLoop()
	if s.snap != nil && cfg.SnapshotInterval > 0 {
		s.wg.Add(1)
		go s.snapshotLoop(cfg.SnapshotInterval)
	}
	return s, nil
}

func workersOf(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return DefaultWorkers
}

// newServer assembles a server without starting the worker pool or the
// scheduler loop — tests use it to fill the queue deterministically.
func newServer(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("serve: config needs a DB")
	}
	queueDepth := cfg.QueueDepth
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	cacheCap := cfg.CacheCapacity
	if cacheCap == 0 {
		cacheCap = DefaultCacheCapacity
	}
	s := &Server{
		db:         cfg.DB,
		queries:    make(map[string]*queryState, len(cfg.Queries)),
		mvpp:       cfg.MVPP,
		model:      cfg.Model,
		selectOpts: cfg.SelectOpts,
		cache:      newResultCache(cacheCap),
		queue:      make(chan *request, queueDepth),
		closed:     make(chan struct{}),
		inj:        cfg.Injector,
		retry:      cfg.Retry.withDefaults(),
		jrng:       rand.New(rand.NewSource(1)),
		start:      time.Now(),
		obsv:       cfg.Obs,

		audit:          cfg.Audit,
		auditAutoApply: cfg.AuditAutoApply,
		auditSkew:      cfg.AuditSkew,
		auditSkewViews: cfg.AuditSkewViews,
		recalHandled:   make(map[string]bool),

		snap:            cfg.Snapshots,
		snapEveryEpochs: cfg.SnapshotEveryEpochs,
		snapRetain:      cfg.SnapshotRetain,
		recovery:        cfg.Recovery,
	}
	if s.auditSkew <= 0 {
		s.auditSkew = 1
	}
	if s.snapEveryEpochs == 0 {
		s.snapEveryEpochs = DefaultSnapshotEveryEpochs
	}
	if s.snapRetain < 1 {
		s.snapRetain = DefaultSnapshotRetain
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	if cfg.StatsWindow >= 0 {
		win := cfg.StatsWindow
		if win == 0 {
			win = DefaultStatsWindow
		}
		s.winQueries = obs.NewWindowCounter(win)
		s.winHits = obs.NewWindowCounter(win)
		s.winRefreshFail = obs.NewWindowCounter(win)
		s.winLat = obs.NewWindowHist(win)
	}
	if cfg.TraceSampleEvery > 0 {
		s.traceEvery = uint64(cfg.TraceSampleEvery)
		ring := cfg.TraceRingSize
		if ring <= 0 {
			ring = DefaultTraceRing
		}
		s.traces = newTraceRing(ring)
		s.exemplars = &exemplarSet{}
	}
	if cfg.TraceSampleEvery > 0 || cfg.FlightDir != "" {
		s.flight = obs.NewFlightRecorder(cfg.FlightRecorderSize, cfg.FlightDir)
	}
	for _, q := range cfg.Queries {
		if q.Name == "" || q.Plan == nil {
			return nil, errors.New("serve: query specs need a name and a plan")
		}
		if _, dup := s.queries[q.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate query %q", q.Name)
		}
		s.queries[q.Name] = &queryState{spec: q}
		s.order = append(s.order, q.Name)
	}
	sched, err := newScheduler(s, cfg)
	if err != nil {
		return nil, err
	}
	s.sched = sched
	s.feed = newChangeFeed(s, cfg.Ingest, sched.batch)

	s.ctrQueries = obs.CounterOf(cfg.Obs, obs.CtrServeQueries)
	s.ctrHits = obs.CounterOf(cfg.Obs, obs.CtrServeCacheHits)
	s.ctrMisses = obs.CounterOf(cfg.Obs, obs.CtrServeCacheMisses)
	s.ctrRejected = obs.CounterOf(cfg.Obs, obs.CtrServeRejected)
	s.ctrEpochs = obs.CounterOf(cfg.Obs, obs.CtrServeEpochs)
	s.ctrDeltaRows = obs.CounterOf(cfg.Obs, obs.CtrServeDeltaRows)
	s.ctrRefreshR = obs.CounterOf(cfg.Obs, obs.CtrServeRefreshReads)
	s.ctrRefreshW = obs.CounterOf(cfg.Obs, obs.CtrServeRefreshWrites)
	s.ctrRetries = obs.CounterOf(cfg.Obs, obs.CtrServeRetries)
	s.ctrRefreshFail = obs.CounterOf(cfg.Obs, obs.CtrServeRefreshFailures)
	s.ctrFallbacks = obs.CounterOf(cfg.Obs, obs.CtrServeFallbacks)
	s.ctrBreakerTrips = obs.CounterOf(cfg.Obs, obs.CtrServeBreakerTrips)
	s.ctrDegraded = obs.CounterOf(cfg.Obs, obs.CtrServeDegraded)
	s.ctrPanics = obs.CounterOf(cfg.Obs, obs.CtrServePanics)
	s.ctrReplayed = obs.CounterOf(cfg.Obs, obs.CtrServeReplayedRows)
	s.ctrCostObs = obs.CounterOf(cfg.Obs, obs.CtrCostObservations)
	s.ctrCostDrift = obs.CounterOf(cfg.Obs, obs.CtrCostDrifts)
	s.ctrRecal = obs.CounterOf(cfg.Obs, obs.CtrServeRecalibrations)
	s.ctrStreamRows = obs.CounterOf(cfg.Obs, obs.CtrServeStreamRows)
	s.ctrStreamGroups = obs.CounterOf(cfg.Obs, obs.CtrServeStreamGroups)
	s.ctrStreamShed = obs.CounterOf(cfg.Obs, obs.CtrServeStreamShed)
	s.ctrStreamBlocked = obs.CounterOf(cfg.Obs, obs.CtrServeStreamBlocked)
	s.ctrSLOViolations = obs.CounterOf(cfg.Obs, obs.CtrServeSLOViolations)
	s.ctrCheckpointDeclined = obs.CounterOf(cfg.Obs, obs.CtrServeCheckpointDeclined)
	s.ctrFlightDumps = obs.CounterOf(cfg.Obs, obs.CtrServeFlightDumps)
	if reg := obs.RegistryOf(cfg.Obs); reg != nil {
		s.gQueueDepth = reg.Gauge(obs.GaugeServeQueueDepth)
		s.gStaleRows = reg.Gauge(obs.GaugeServeStaleRows)
		s.gUnhealthy = reg.Gauge(obs.GaugeServeUnhealthyViews)
		s.gSnapBytes = reg.Gauge(obs.GaugeSnapshotBytes)
		s.gSnapGen = reg.Gauge(obs.GaugeSnapshotGeneration)
		s.gIngestBuffer = reg.Gauge(obs.GaugeServeIngestBufferRows)
	}

	// A server booted from a snapshot resumes the snapshot's maintenance
	// epoch (the cache-epoch tags and per-view staleness stay monotonic
	// across the restart) and seeds every view's refresh bookkeeping from
	// the snapshot commit — restored and recomputed views alike are current
	// as of recovery.
	if r := cfg.Recovery; r != nil && !r.Cold {
		s.epoch.Store(r.SnapshotEpoch)
		s.snapEpochs.Store(int64(r.SnapshotEpoch))
		sched.mu.Lock()
		sched.ackedLSN = r.Watermark
		// The first post-recovery epoch's lineage covers the journal suffix
		// past the snapshot watermark — not LSN 0.
		sched.lastTakeLSN = r.Watermark
		for name, vs := range sched.views {
			vs.epoch = r.SnapshotEpoch
			vs.lastRefresh = r.SnapshotCreatedAt
			// Restored views seed their lineage from the manifest's lineage
			// watermark; recomputed views start a fresh lineage with the
			// recovery itself as the first entry.
			if mark, ok := r.ViewLineage[name]; ok {
				vs.lineage = append(vs.lineage, LineageEntry{
					Epoch: mark.Epoch, LSNLo: mark.LSN, LSNHi: mark.LSN,
					Mode: "restored", Fingerprint: mark.Fingerprint,
					At: r.SnapshotCreatedAt,
				})
			} else {
				vs.lineage = append(vs.lineage, LineageEntry{
					Epoch: r.SnapshotEpoch, LSNLo: r.Watermark, LSNHi: r.Watermark,
					Mode: "recovered-recompute", At: r.SnapshotCreatedAt,
				})
			}
		}
		sched.mu.Unlock()
	}
	if r := cfg.Recovery; r != nil && r.CorruptArtifacts > 0 {
		// Checkpoint-corruption episode: recovery had to fall back past
		// corrupt artifacts. Latch one forensic dump for the postmortem.
		s.dumpFlight("recovery_corruption",
			obs.Int("corrupt_artifacts", int64(r.CorruptArtifacts)),
			obs.Int("generation", int64(r.Generation)))
	}

	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	s.repriceAudit()
	return s, nil
}

func (s *Server) startWorkers(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Query answers one named workload query and records the access for the
// advisor's observed frequencies.
func (s *Server) Query(ctx context.Context, name string) (*Result, error) {
	qs, ok := s.queries[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown query %q", name)
	}
	qs.observed.Add(1)
	return s.submit(ctx, name, qs.spec.Plan)
}

// QueryNames lists the named workload queries in registration order.
func (s *Server) QueryNames() []string {
	return append([]string(nil), s.order...)
}

// rejectOnce counts an admission-control rejection exactly once per
// request, no matter whether the submitter or the worker noticed it first.
func (s *Server) rejectOnce(req *request) {
	if req.rejected.CompareAndSwap(false, true) {
		s.stats.rejected.Add(1)
		s.ctrRejected.Inc()
		s.traceStage(req.qt, "reply", obs.String("outcome", "rejected"))
	}
}

// Submit answers an ad-hoc plan: cache, then the worker pool, which
// executes the plan rewritten over the current materialized views. A full
// queue blocks the caller (backpressure) until a slot frees or ctx expires
// (rejection). Submitting to a closed server — or racing with Close —
// returns ErrClosed.
func (s *Server) Submit(ctx context.Context, plan algebra.Node) (*Result, error) {
	return s.submit(ctx, "", plan)
}

// submit is the admission path behind Query and Submit; name labels the
// workload query for trace correlation ("" for ad-hoc plans).
func (s *Server) submit(ctx context.Context, name string, plan algebra.Node) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	select {
	case <-s.closed:
		return nil, ErrClosed
	default:
	}
	start := time.Now()
	nowSec := start.Unix()
	s.stats.queries.Add(1)
	s.ctrQueries.Inc()
	s.winQueries.Add(nowSec, 1)

	var qt *queryTrace
	if s.traces != nil {
		id := s.nextQueryID.Add(1)
		if (id-1)%s.traceEvery == 0 {
			qt = &queryTrace{id: id, kind: "query", traceID: obs.NewTraceContext().TraceID, query: name, start: start}
			s.traces.add(qt)
			s.traceStage(qt, "admit", obs.String("query", name))
		}
	}

	key := algebra.StructuralKey(plan)
	if table, epoch, ok := s.cache.get(key, s.epoch.Load()); ok {
		s.stats.hits.Add(1)
		s.ctrHits.Inc()
		s.winHits.Add(nowSec, 1)
		lat := time.Since(start)
		s.stats.lat.record(lat)
		s.winLat.Record(nowSec, lat)
		if qt != nil {
			s.joinEpochTrace(qt, epoch, true, 0)
			s.exemplars.record(lat, qt.traceID, qt.id)
		}
		s.traceStage(qt, "cache_hit", obs.Int("epoch", int64(epoch)))
		s.traceStage(qt, "reply",
			obs.Bool("cached", true), obs.Int("latency_us", lat.Microseconds()))
		return &Result{Table: table, Cached: true, Epoch: epoch, Latency: lat}, nil
	}
	s.stats.misses.Add(1)
	s.ctrMisses.Inc()
	s.traceStage(qt, "cache_miss")

	req := &request{ctx: ctx, plan: plan, key: key, name: name, qt: qt, done: make(chan response, 1)}
	select {
	case s.queue <- req:
	default:
		// Queue full: backpressure. Block until a slot frees, the caller
		// gives up, or the server closes.
		s.stats.backpressured.Add(1)
		select {
		case s.queue <- req:
		case <-ctx.Done():
			s.rejectOnce(req)
			return nil, fmt.Errorf("%w: %v", ErrRejected, ctx.Err())
		case <-s.closed:
			return nil, ErrClosed
		}
	}
	s.gQueueDepth.Set(float64(len(s.queue)))

	select {
	case resp := <-req.done:
		if resp.err != nil {
			s.traceStage(qt, "reply", obs.String("outcome", "error"),
				obs.String("error", resp.err.Error()))
			return nil, resp.err
		}
		resp.res.Latency = time.Since(start)
		s.stats.lat.record(resp.res.Latency)
		s.winLat.Record(time.Now().Unix(), resp.res.Latency)
		if qt != nil {
			s.exemplars.record(resp.res.Latency, qt.traceID, qt.id)
		}
		s.traceStage(qt, "reply",
			obs.Bool("cached", false),
			obs.Bool("degraded", resp.res.Degraded),
			obs.Int("epoch", int64(resp.res.Epoch)),
			obs.Int("latency_us", resp.res.Latency.Microseconds()))
		return resp.res, nil
	case <-ctx.Done():
		// The request is already admitted; the worker will complete it into
		// the buffered channel (and populate the cache), but this caller is
		// done waiting.
		s.rejectOnce(req)
		return nil, fmt.Errorf("%w: %v", ErrRejected, ctx.Err())
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case req := <-s.queue:
			s.handle(req)
		case <-s.closed:
			// Drain what was admitted before the close, so no submitter
			// blocks forever on a done channel.
			for {
				select {
				case req := <-s.queue:
					s.handle(req)
				default:
					return
				}
			}
		}
	}
}

// handle executes one admitted request against the current view epoch.
func (s *Server) handle(req *request) {
	// A caller that expired while queued gets an admission-control answer
	// instead of burning the worker on a result nobody is waiting for.
	if err := req.ctx.Err(); err != nil {
		s.rejectOnce(req)
		req.done <- response{err: fmt.Errorf("%w: %v", ErrRejected, err)}
		return
	}
	// A panicking execution (injected or real) must not take the worker
	// down with it: the pool's size is the serving capacity.
	defer func() {
		if r := recover(); r != nil {
			s.stats.panics.Add(1)
			s.ctrPanics.Inc()
			req.done <- response{err: fmt.Errorf("serve: query worker recovered from panic: %v", r)}
		}
	}()
	if err := s.inj.Hit(fault.SiteServeWorker); err != nil {
		req.done <- response{err: err}
		return
	}
	epoch := s.epoch.Load()
	rewritten := s.db.RewriteWithViewsSubsuming(req.plan)
	degraded := false
	if names := s.unhealthyViewsIn(rewritten); len(names) > 0 {
		// Circuit breaker: the rewritten plan reads a view that is unhealthy
		// or beyond its staleness bound. Answer from the original plan over
		// base relations — always fresh, at the paper's Ca(q) cost.
		rewritten = req.plan
		degraded = true
		s.stats.degraded.Add(1)
		s.ctrDegraded.Inc()
		obs.Emit(s.obsv, obs.EvServeDegraded, obs.String("views", strings.Join(names, ",")))
		s.traceStage(req.qt, "degraded", obs.String("views", strings.Join(names, ",")))
	}
	res, err := s.db.Execute(rewritten)
	if err != nil && !degraded && strings.Contains(err.Error(), "unknown table") {
		// The view set churned between rewrite and execute (an advice swap
		// dropped the view the plan was rewritten onto). The original plan
		// reads base tables only and always works.
		res, err = s.db.Execute(req.plan)
	}
	if err != nil {
		req.done <- response{err: err}
		return
	}
	executeAttrs := []obs.Attr{
		obs.Int("reads", res.TotalReads()), obs.Int("epoch", int64(epoch)),
	}
	if req.qt != nil {
		if ptid := s.joinEpochTrace(req.qt, epoch, false, res.TotalReads()); ptid != 0 {
			executeAttrs = append(executeAttrs, obs.Int("pipeline_trace_id", int64(ptid)))
		}
	}
	s.traceStage(req.qt, "execute", executeAttrs...)
	if !degraded && req.name != "" {
		// Record the measured I/O against the query class's predicted cost.
		// Degraded executions ran the base-relation plan, which the
		// registered prediction does not price — they are skipped.
		s.observeAudit(costaudit.KindQuery, req.name, res.TotalReads()+res.TotalWrites())
	}
	out := &Result{Table: res.Table, Reads: res.TotalReads(), Epoch: epoch, Degraded: degraded}
	// Cache only results whose execution saw a single epoch end to end (a
	// mid-flight refresh would make the cached rows of mixed provenance)
	// and that were not degraded — cached entries always carry the
	// view-based answer so a hit's provenance is unambiguous.
	if !degraded && s.epoch.Load() == epoch {
		s.cache.put(req.key, epoch, res.Table)
	}
	req.done <- response{res: out}
}

// unhealthyViewsIn lists the maintained views the plan scans whose queries
// must degrade right now (breaker not closed, or lag beyond the staleness
// bound), sorted.
func (s *Server) unhealthyViewsIn(plan algebra.Node) []string {
	sc := s.sched
	seen := map[string]bool{}
	now := time.Now()
	sc.mu.Lock()
	algebra.Walk(plan, func(n algebra.Node) {
		scan, ok := n.(*algebra.Scan)
		if !ok {
			return
		}
		if vs, ok := sc.views[scan.Relation]; ok && vs.degrading(sc.breaker, now) {
			seen[scan.Relation] = true
		}
	})
	sc.mu.Unlock()
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Epoch returns the current refresh epoch (0 before any maintenance ran).
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Close stops the server: the scheduler halts, workers finish the admitted
// queue, and further submissions fail with ErrClosed. Close is idempotent
// and safe to race with in-flight Query/Submit/Ingest calls: stragglers
// that slip past the closed check are answered with ErrClosed rather than
// left blocked. Close does not run a final maintenance epoch; call Flush
// first if ingested deltas must land (with a journal configured, unlanded
// deltas are replayed by the next server instead).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		// Drain the CDC change feed first, while ingestion is still open: the
		// final partial group is journaled and staged, every parked
		// StreamIngest caller gets its outcome, and blocked callers wake with
		// ErrClosed. Nothing accepted by the feed is ever dropped.
		s.feed.shutdown()
		close(s.closed)
		s.sched.stopTicker()
		s.cancel()
		s.wg.Wait()
		// A Submit that passed the closed check can still enqueue after the
		// workers exited. Answer stragglers until no submission is in
		// flight.
		for {
			select {
			case req := <-s.queue:
				req.done <- response{err: ErrClosed}
			default:
				if s.inflight.Load() == 0 {
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	})
	return nil
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	// Queries is every submission (cache hits included); CacheHits and
	// CacheMisses split them; Rejected counts admission-control failures
	// and Backpressured counts submissions that had to wait for a queue
	// slot.
	Queries, CacheHits, CacheMisses, Rejected, Backpressured int64
	// Epochs counts maintenance epochs; IncrementalRefreshes and
	// Recomputes count per-view refreshes by strategy within them;
	// DeltaRows counts ingested rows; RefreshReads/RefreshWrites is the
	// block I/O the refreshes spent.
	Epochs, IncrementalRefreshes, Recomputes, DeltaRows int64
	RefreshReads, RefreshWrites                         int64
	// Retries counts refresh attempts repeated after a transient failure;
	// RefreshFailures counts refreshes that stayed failed after retrying;
	// IncrementalFallbacks counts incremental refreshes that persistently
	// failed and fell back to full recomputation.
	Retries, RefreshFailures, IncrementalFallbacks int64
	// BreakerTrips counts circuit breakers opening (half-open probes that
	// fail re-trip and count again); DegradedQueries counts queries
	// answered from base relations because a view was unhealthy.
	BreakerTrips, DegradedQueries int64
	// PanicsRecovered counts panics caught in workers and refreshes;
	// ReplayedDeltaRows counts journal rows re-ingested at startup.
	PanicsRecovered, ReplayedDeltaRows int64
	// CostObservations counts actuals recorded in the cost ledger;
	// CostDrifts counts ledger entries newly flagged as drifted;
	// Recalibrations counts drift-triggered advisor re-selections.
	CostObservations, CostDrifts, Recalibrations int64
	// StreamRows counts rows group-committed through the CDC streaming path
	// (StreamIngest); StreamGroups counts the group commits that carried
	// them; StreamShed counts calls shed with ErrBackpressure after the
	// block deadline; StreamBlocked counts calls that had to block on the
	// full feed buffer (shed or not).
	StreamRows, StreamGroups, StreamShed, StreamBlocked int64
	// SLOViolations counts freshness-SLO violation episodes (a view
	// entering the violated state; recovery and re-violation count again).
	SLOViolations int64
	// FlightDumps counts flight-recorder dumps latched by episodes (SLO
	// breach, breaker open, checkpoint failure, recovery corruption).
	FlightDumps int64
	// IngestLagP50/P95/P99 are accepted→group-committed latency quantiles
	// of streamed rows.
	IngestLagP50, IngestLagP95, IngestLagP99 time.Duration
	// IngestBufferedRows is the change feed's current occupancy.
	IngestBufferedRows int
	// QueueDepth and CacheEntries are current occupancies.
	QueueDepth, CacheEntries int
	// Uptime is time since New; QPS is Queries/Uptime.
	Uptime time.Duration
	QPS    float64
	// P50/P95/P99 are submission-to-answer latency quantiles (upper bucket
	// bounds of a power-of-two histogram).
	P50, P95, P99 time.Duration
	// WindowSeconds is the rolling-stats window length; the Window* fields
	// below aggregate over the trailing window only (all zero when windowed
	// aggregation is disabled).
	WindowSeconds int
	// WindowQueries/WindowCacheHits/WindowRefreshFailures count events in
	// the window; WindowQPS and WindowRefreshFailuresPerSec are their
	// per-second rates and WindowHitRate is hits/queries in [0,1].
	WindowQueries, WindowCacheHits, WindowRefreshFailures int64
	WindowQPS, WindowRefreshFailuresPerSec, WindowHitRate float64
	// WindowP50/P95/P99 are latency quantiles over the window only.
	WindowP50, WindowP95, WindowP99 time.Duration
}

// CacheHitRate returns CacheHits/Queries in [0,1].
func (st Stats) CacheHitRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(st.Queries)
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	up := time.Since(s.start)
	st := Stats{
		Queries:              s.stats.queries.Load(),
		CacheHits:            s.stats.hits.Load(),
		CacheMisses:          s.stats.misses.Load(),
		Rejected:             s.stats.rejected.Load(),
		Backpressured:        s.stats.backpressured.Load(),
		Epochs:               s.stats.epochs.Load(),
		IncrementalRefreshes: s.stats.incRefreshes.Load(),
		Recomputes:           s.stats.recomputes.Load(),
		DeltaRows:            s.stats.deltaRows.Load(),
		RefreshReads:         s.stats.refreshReads.Load(),
		RefreshWrites:        s.stats.refreshWrites.Load(),
		Retries:              s.stats.retries.Load(),
		RefreshFailures:      s.stats.refreshFailures.Load(),
		IncrementalFallbacks: s.stats.fallbacks.Load(),
		BreakerTrips:         s.stats.breakerTrips.Load(),
		DegradedQueries:      s.stats.degraded.Load(),
		PanicsRecovered:      s.stats.panics.Load(),
		ReplayedDeltaRows:    s.stats.replayedRows.Load(),
		CostObservations:     s.stats.costObservations.Load(),
		CostDrifts:           s.stats.costDrifts.Load(),
		Recalibrations:       s.stats.recalibrations.Load(),
		StreamRows:           s.stats.streamRows.Load(),
		StreamGroups:         s.stats.streamGroups.Load(),
		StreamShed:           s.stats.streamShed.Load(),
		StreamBlocked:        s.stats.streamBlocked.Load(),
		SLOViolations:        s.stats.sloViolations.Load(),
		FlightDumps:          s.stats.flightDumps.Load(),
		IngestLagP50:         s.stats.streamLag.quantile(0.50),
		IngestLagP95:         s.stats.streamLag.quantile(0.95),
		IngestLagP99:         s.stats.streamLag.quantile(0.99),
		QueueDepth:           len(s.queue),
		CacheEntries:         s.cache.len(),
		IngestBufferedRows:   s.feed.buffered(),
		Uptime:               up,
		P50:                  s.stats.lat.quantile(0.50),
		P95:                  s.stats.lat.quantile(0.95),
		P99:                  s.stats.lat.quantile(0.99),
	}
	if up > 0 {
		st.QPS = float64(st.Queries) / up.Seconds()
	}
	if s.winQueries != nil {
		nowSec := time.Now().Unix()
		st.WindowSeconds = s.winQueries.WindowSeconds()
		st.WindowQueries = s.winQueries.Total(nowSec)
		st.WindowCacheHits = s.winHits.Total(nowSec)
		st.WindowRefreshFailures = s.winRefreshFail.Total(nowSec)
		st.WindowQPS = s.winQueries.Rate(nowSec)
		st.WindowRefreshFailuresPerSec = s.winRefreshFail.Rate(nowSec)
		if st.WindowQueries > 0 {
			st.WindowHitRate = float64(st.WindowCacheHits) / float64(st.WindowQueries)
		}
		snap := s.winLat.Snapshot(nowSec)
		st.WindowP50 = snap.Quantile(0.50)
		st.WindowP95 = snap.Quantile(0.95)
		st.WindowP99 = snap.Quantile(0.99)
	}
	return st
}

// LatencySnapshot exports the all-time submission-to-answer latency
// histogram (power-of-two buckets, count, summed nanoseconds) — the
// telemetry plane renders it as a cumulative Prometheus histogram.
func (s *Server) LatencySnapshot() obs.HistSnapshot { return s.stats.lat.snapshot() }

// WindowLatencySnapshot exports the rolling-window latency histogram; the
// zero snapshot when windowed aggregation is disabled.
func (s *Server) WindowLatencySnapshot() obs.HistSnapshot {
	return s.winLat.Snapshot(time.Now().Unix())
}

// IsClosed reports whether Close has begun. It flips true the instant the
// server starts shutting down — before the drain finishes — so health
// endpoints can answer "closed" instead of hanging behind the drain.
func (s *Server) IsClosed() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// tracingArmed reports whether the write path should mint span contexts:
// either the trace ring or the flight recorder is live. With both off,
// every propagation site skips context minting entirely.
func (s *Server) tracingArmed() bool { return s.traces != nil || s.flight != nil }

// epochTraceLink joins sampled queries to the pipeline trace of the epoch
// whose contents they read. The scheduler publishes one per traced epoch;
// the first sampled query that reads the epoch records a query.read span
// into the epoch's span tree, completing the delta's causal chain (ingest →
// group commit → journal → epoch → refresh → query hit).
type epochTraceLink struct {
	epoch   uint64
	traceID uint64
	ctx     obs.SpanContext
	trace   *queryTrace
	// queryRecorded bounds the epoch entry's growth: only the first sampled
	// reader appends a span; later readers only link.
	queryRecorded atomic.Bool
}

// joinEpochTrace connects a sampled query to the pipeline trace of the
// epoch it read (if that epoch was traced): the query links the pipeline
// trace ID, and the first sampled reader per epoch hangs a query.read span
// under the epoch's root span. Returns the pipeline trace ID (0 when the
// epoch was not traced).
func (s *Server) joinEpochTrace(qt *queryTrace, epoch uint64, cached bool, reads int64) uint64 {
	link := s.epochLink.Load()
	if link == nil || link.epoch != epoch {
		return 0
	}
	qt.link(link.traceID)
	if link.queryRecorded.CompareAndSwap(false, true) {
		now := time.Now()
		s.traceSpan(link.trace, link.ctx.NewChild(), "query.read", now, 0,
			obs.Int("query_id", int64(qt.id)),
			obs.Int("query_trace_id", int64(qt.traceID)),
			obs.Bool("cached", cached),
			obs.Int("reads", reads),
			obs.Int("epoch", int64(epoch)))
	}
	return link.traceID
}

// dumpFlight latches one flight-recorder dump for a forensic episode.
// No-op when the recorder is off.
func (s *Server) dumpFlight(reason string, attrs ...obs.Attr) {
	if s.flight == nil {
		return
	}
	d := s.flight.Dump(reason, attrs...)
	s.stats.flightDumps.Add(1)
	s.ctrFlightDumps.Inc()
	evAttrs := append([]obs.Attr{
		obs.String("reason", reason),
		obs.Int("records", int64(len(d.Records))),
		obs.String("path", d.Path),
	}, attrs...)
	obs.Emit(s.obsv, obs.EvFlightDump, evAttrs...)
}

// FlightDumps returns the retained flight-recorder dumps, oldest first
// (nil when the recorder is off).
func (s *Server) FlightDumps() []obs.FlightDump { return s.flight.Dumps() }

// LatencyExemplars returns the per-bucket latency exemplars — the most
// recent sampled query latency in each histogram bucket with its trace ID.
// Nil when trace sampling is off.
func (s *Server) LatencyExemplars() []LatencyExemplar { return s.exemplars.snapshot() }
