package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/costaudit"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/obs"
)

// Staleness reports how far one materialized view lags the ingested
// deltas.
type Staleness struct {
	// Strategy is the view's maintenance strategy ("incremental" or
	// "recompute").
	Strategy string
	// Epoch is the refresh epoch at the view's last refresh (0 if never
	// refreshed since serving started).
	Epoch uint64
	// PendingRows counts ingested base-table rows the view does not
	// reflect yet. Buffered rows are invisible to every plan (views and
	// base alike); LagRows is the part that actually skews answers.
	PendingRows int
	// LagRows counts rows already applied to the base tables that the
	// stored view does not reflect — the debt of failed refreshes. The
	// breaker's staleness bound tests against it.
	LagRows int
	// Breaker is the circuit breaker position ("closed", "open",
	// "half-open"); ConsecutiveFailures counts persistent refresh failures
	// since the last success; Degrading reports whether queries over the
	// view are currently answered from base relations; LastError is the
	// most recent refresh failure ("" when healthy).
	Breaker             string
	ConsecutiveFailures int
	Degrading           bool
	LastError           string
	// LastRefresh is when the scheduler last refreshed the view (zero if
	// never).
	LastRefresh time.Time
	// Policy is the view's refresh policy in ParsePolicy form ("on-commit",
	// "manual", "scheduled:<interval>", "streaming").
	Policy string
	// Status is the view's lifecycle position: VALID, STALE, BUILDING, or
	// ERROR (see ViewStatus).
	Status string
	// SLOViolated reports whether the view's freshness SLO is breached right
	// now; SLOViolations counts distinct violation episodes since serving
	// started; StaleEpochs counts consecutive epochs the view ended lagging.
	SLOViolated   bool
	SLOViolations int64
	StaleEpochs   int
}

// viewState is the scheduler's registry entry for one maintained view.
type viewState struct {
	name     string
	strategy core.MaintenanceStrategy
	// rels is the set of base relations the view is computed from — the
	// fu-driven filter: an epoch only refreshes views whose relations
	// gained deltas.
	rels map[string]bool

	// policy decides *when* the scheduler refreshes the view; slo bounds how
	// far it may lag before queries degrade to base-relation plans.
	policy RefreshPolicy
	slo    FreshnessSLO

	epoch       uint64
	lastRefresh time.Time
	pending     int

	// lag counts rows already applied to the view's base relations that
	// the stored view does not reflect (a refresh failed after the apply,
	// or the policy deferred it);
	// failures/state/openedAt/lastErr are the circuit breaker: failures
	// counts consecutive persistent refresh failures, state the breaker
	// position, openedAt when it last opened.
	lag      int
	failures int
	state    BreakerState
	openedAt time.Time
	lastErr  string

	// building marks an in-flight refresh (set at epoch dispatch, cleared
	// when the epoch settles); forceRefresh is RefreshView's one-shot
	// override of policy, schedule, and breaker cooldown.
	building     bool
	forceRefresh bool

	// staleSince is when the view first fell behind (zero while caught up);
	// staleEpochs counts consecutive epochs ending with lag; sloViolated
	// latches the current SLO breach so each episode is counted once in
	// sloViolations.
	staleSince    time.Time
	staleEpochs   int
	sloViolated   bool
	sloViolations int64

	// lineage is the bounded history of epochs that produced this view's
	// contents (see lineage.go), newest last.
	lineage []LineageEntry
}

// policyDue reports whether the view's policy lets this epoch refresh it.
// Manual views are never due (only RefreshView forces them); scheduled views
// are due once the interval since their last refresh elapsed; on-commit and
// streaming views are always due. Caller holds the scheduler mutex.
func (vs *viewState) policyDue(now time.Time) bool {
	switch vs.policy.Kind {
	case PolicyManual:
		return false
	case PolicyScheduled:
		return vs.lastRefresh.IsZero() || now.Sub(vs.lastRefresh) >= vs.policy.Every
	default:
		return true
	}
}

// sloBreached reports whether the view's freshness SLO is violated right
// now. A caught-up view (lag 0) never breaches, no matter how long ago it
// refreshed. Caller holds the scheduler mutex.
func (vs *viewState) sloBreached(now time.Time) bool {
	if vs.slo.zero() || vs.lag == 0 {
		return false
	}
	if vs.slo.MaxLagEpochs > 0 && vs.staleEpochs > vs.slo.MaxLagEpochs {
		return true
	}
	if vs.slo.MaxLag > 0 && !vs.staleSince.IsZero() && now.Sub(vs.staleSince) > vs.slo.MaxLag {
		return true
	}
	return false
}

// statusLocked derives the view's lifecycle status. Caller holds the
// scheduler mutex.
func (vs *viewState) statusLocked(now time.Time) ViewStatus {
	switch {
	case vs.building:
		return StatusBuilding
	case vs.state != BreakerClosed:
		return StatusError
	case vs.lag > 0 || vs.sloBreached(now):
		return StatusStale
	default:
		return StatusValid
	}
}

// degrading reports whether queries over the view must be answered from
// base relations right now: open breaker, staleness bound exceeded, or a
// breached freshness SLO. Caller holds the scheduler mutex.
func (vs *viewState) degrading(p BreakerPolicy, now time.Time) bool {
	return vs.state != BreakerClosed ||
		(p.StalenessBound > 0 && vs.lag > p.StalenessBound) ||
		vs.sloBreached(now)
}

// scheduler buffers ingested delta rows and turns them into maintenance
// epochs. The loop goroutine fires on a filled batch or a timer; Flush runs
// an epoch synchronously. All engine maintenance happens under the server's
// maintMu.
type scheduler struct {
	s       *Server
	batch   int
	kick    chan struct{}
	breaker BreakerPolicy
	journal engine.DeltaJournal
	// defaultPolicy/defaultSLO resolve unset per-view settings, both at
	// construction and for views added later by advice swaps.
	defaultPolicy RefreshPolicy
	defaultSLO    FreshnessSLO

	ticker *time.Ticker

	// mu guards the delta buffer, the view registry, and the journal
	// watermark.
	mu      sync.Mutex
	buf     map[string][][]algebra.Value
	bufRows int
	views   map[string]*viewState
	// appendLSN is the highest journal LSN whose rows are buffered; take()
	// captures it as the commit watermark for the epoch that lands them.
	appendLSN uint64
	// ackedLSN is the highest journal LSN whose rows have landed in the
	// base tables (acked after ApplyDeltas) — the watermark a snapshot
	// checkpoint stamps and the floor journal compaction truncates to.
	ackedLSN uint64
	// lastTakeLSN is the appendLSN the previous take() observed — the low
	// bound of the next epoch's lineage LSN range, so consecutive epochs'
	// (lo, hi] ranges partition the journal.
	lastTakeLSN uint64
	// bufBatches counts the ingest calls staged since the last take();
	// pendingTraces carries the sampled ingest batches' span contexts into
	// the epoch that lands them (both drained by take, both guarded by mu —
	// the same lock that orders journaling, so a batch and its trace always
	// land in the same epoch).
	bufBatches    int
	pendingTraces []ingestTraceRef
}

// ingestTraceRef ties one sampled ingest batch to the maintenance epoch
// that lands it: ctx is the batch's span context (the epoch adopts the
// first contributor's trace and links the rest), trace its ring entry (may
// be nil when only the flight recorder is armed).
type ingestTraceRef struct {
	ctx   obs.SpanContext
	trace *queryTrace
}

func newScheduler(s *Server, cfg Config) (*scheduler, error) {
	batch := cfg.DeltaBatch
	if batch <= 0 {
		batch = DefaultDeltaBatch
	}
	sc := &scheduler{
		s:             s,
		batch:         batch,
		kick:          make(chan struct{}, 1),
		breaker:       cfg.Breaker.withDefaults(),
		journal:       cfg.Journal,
		buf:           make(map[string][][]algebra.Value),
		views:         make(map[string]*viewState, len(cfg.Views)),
		defaultPolicy: cfg.DefaultPolicy,
		defaultSLO:    cfg.DefaultSLO,
	}
	if cfg.RefreshInterval > 0 {
		sc.ticker = time.NewTicker(cfg.RefreshInterval)
	}
	for _, vs := range cfg.Views {
		v, err := s.db.View(vs.Name)
		if err != nil {
			return nil, fmt.Errorf("serve: view %q is not materialized in the DB: %w", vs.Name, err)
		}
		rels, err := baseRelationsOf(s.db, v.Plan)
		if err != nil {
			return nil, err
		}
		sc.views[vs.Name] = &viewState{
			name:     vs.Name,
			strategy: vs.Strategy,
			rels:     rels,
			policy:   vs.Policy.orDefault(cfg.DefaultPolicy),
			slo:      vs.SLO.orDefault(cfg.DefaultSLO),
		}
	}
	return sc, nil
}

// baseRelationsOf collects the base relations a plan scans, following
// view references transitively.
func baseRelationsOf(db *engine.DB, plan algebra.Node) (map[string]bool, error) {
	rels := make(map[string]bool)
	var walkErr error
	var visit func(n algebra.Node)
	visit = func(n algebra.Node) {
		algebra.Walk(n, func(m algebra.Node) {
			scan, ok := m.(*algebra.Scan)
			if !ok || walkErr != nil {
				return
			}
			if _, err := db.Table(scan.Relation); err == nil {
				rels[scan.Relation] = true
				return
			}
			v, err := db.View(scan.Relation)
			if err != nil {
				walkErr = fmt.Errorf("serve: plan scans unknown relation %q", scan.Relation)
				return
			}
			visit(v.Plan)
		})
	}
	visit(plan)
	return rels, walkErr
}

func (sc *scheduler) startLoop() {
	sc.s.wg.Add(1)
	go sc.loop()
}

func (sc *scheduler) loop() {
	defer sc.s.wg.Done()
	var tick <-chan time.Time
	if sc.ticker != nil {
		tick = sc.ticker.C
	}
	for {
		select {
		case <-sc.s.closed:
			return
		case <-sc.kick:
		case <-tick:
		}
		// A failed epoch is retried by the next kick or tick; surface it
		// through the observer rather than dying silently.
		if err := sc.s.runEpoch(); err != nil {
			obs.Emit(sc.s.obsv, obs.EvServeEpoch, obs.String("error", err.Error()))
		}
	}
}

func (sc *scheduler) stopTicker() {
	if sc.ticker != nil {
		sc.ticker.Stop()
	}
}

// Ingest stages delta rows for a base table. The rows become visible only
// when the next maintenance epoch lands (batch filled, timer, or Flush).
// With a journal configured, the batch is journaled durably before it is
// buffered; a journaling failure refuses the ingestion entirely, so every
// accepted batch is recoverable.
func (s *Server) Ingest(table string, rows ...[]algebra.Value) error {
	_, err := s.ingest(table, rows, true, "")
	return err
}

// ingest journals (when asked) and buffers delta rows, returning the
// journal LSN the batch landed at (0 when unjournaled). source tags the
// journal record with the ingestion path ("" for direct Ingest, "stream"
// for the CDC change feed) so a replayed journal shows where rows entered.
// refs carries the sampled span contexts of the batch; they ride the
// buffer into the epoch that lands it.
func (s *Server) ingest(table string, rows [][]algebra.Value, journal bool, source string, refs ...ingestTraceRef) (uint64, error) {
	select {
	case <-s.closed:
		return 0, ErrClosed
	default:
	}
	t, err := s.db.Table(table)
	if err != nil {
		return 0, err
	}
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return 0, fmt.Errorf("serve: row width %d does not match schema width %d of %s",
				len(r), t.Schema.Len(), table)
		}
	}
	sc := s.sched
	sc.mu.Lock()
	var lsn uint64
	if journal && sc.journal != nil {
		// Write-ahead under the buffer lock, so the commit watermark taken
		// by an epoch always covers exactly the rows it stages.
		var err error
		if sa, ok := sc.journal.(engine.SourceAppender); ok && source != "" {
			lsn, err = sa.AppendSource(table, source, rows)
		} else {
			lsn, err = sc.journal.Append(table, rows)
		}
		if err != nil {
			sc.mu.Unlock()
			return 0, fmt.Errorf("serve: journaling deltas: %w", err)
		}
		sc.appendLSN = lsn
	}
	sc.buf[table] = append(sc.buf[table], rows...)
	sc.bufRows += len(rows)
	sc.bufBatches++
	for _, ref := range refs {
		if ref.ctx.Valid() {
			sc.pendingTraces = append(sc.pendingTraces, ref)
		}
	}
	for _, vs := range sc.views {
		if vs.rels[table] {
			vs.pending += len(rows)
		}
	}
	full := sc.bufRows >= sc.batch
	stale := sc.totalPendingLocked()
	sc.mu.Unlock()

	s.stats.deltaRows.Add(int64(len(rows)))
	s.ctrDeltaRows.Add(int64(len(rows)))
	s.gStaleRows.Set(float64(stale))
	if full {
		select {
		case sc.kick <- struct{}{}:
		default:
		}
	}
	return lsn, nil
}

// replayJournal re-ingests the journal's unacknowledged delta batches — the
// rows a crashed predecessor accepted but whose epoch never landed. Called
// by newServer before the workers and the scheduler loop start; the rows
// land with the first epoch and are acknowledged then.
//
// A server booted through snapshot recovery replays from the recovered
// watermark instead: every journal record with LSN past the snapshot —
// acknowledged by the dead process or not — is re-ingested, because the
// restored base tables only contain rows up to the watermark. Without a
// snapshot (cold recovery), the watermark is 0 and the full retained
// journal replays over the freshly built base tables.
func (s *Server) replayJournal() error {
	sc := s.sched
	if sc.journal == nil {
		return nil
	}
	var pending []engine.DeltaRecord
	var err error
	if s.recovery != nil {
		pending, err = sc.journal.RecordsSince(s.recovery.Watermark)
	} else {
		pending, err = sc.journal.Pending()
	}
	if err != nil {
		return fmt.Errorf("serve: reading journal for replay: %w", err)
	}
	var replayed int64
	var maxLSN uint64
	for _, rec := range pending {
		if _, err := s.ingest(rec.Table, rec.Rows, false, rec.Source); err != nil {
			return fmt.Errorf("serve: replaying journaled deltas for %s (LSN %d): %w", rec.Table, rec.LSN, err)
		}
		replayed += int64(len(rec.Rows))
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
	}
	if replayed == 0 {
		return nil
	}
	sc.mu.Lock()
	if maxLSN > sc.appendLSN {
		sc.appendLSN = maxLSN
	}
	sc.mu.Unlock()
	s.stats.replayedRows.Add(replayed)
	s.ctrReplayed.Add(replayed)
	obs.Emit(s.obsv, obs.EvServeJournal,
		obs.String("action", "replay"),
		obs.Int("rows", replayed),
		obs.Int("batches", int64(len(pending))))
	return nil
}

// Flush synchronously runs one maintenance epoch over everything ingested
// so far (a no-op when nothing is pending and every view is healthy).
func (s *Server) Flush() error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	return s.runEpoch()
}

// Staleness reports each maintained view's lag behind the ingested deltas
// and its fault-tolerance status.
func (s *Server) Staleness() map[string]Staleness {
	sc := s.sched
	now := time.Now()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make(map[string]Staleness, len(sc.views))
	for name, vs := range sc.views {
		out[name] = Staleness{
			Strategy:            vs.strategy.String(),
			Epoch:               vs.epoch,
			PendingRows:         vs.pending,
			LagRows:             vs.lag,
			Breaker:             vs.state.String(),
			ConsecutiveFailures: vs.failures,
			Degrading:           vs.degrading(sc.breaker, now),
			LastError:           vs.lastErr,
			LastRefresh:         vs.lastRefresh,
			Policy:              vs.policy.String(),
			Status:              vs.statusLocked(now).String(),
			SLOViolated:         vs.sloBreached(now),
			SLOViolations:       vs.sloViolations,
			StaleEpochs:         vs.staleEpochs,
		}
	}
	return out
}

// RefreshView forces one view to refresh in the next maintenance epoch —
// overriding its policy (this is how manual views catch up), its schedule,
// and the breaker cooldown — and runs that epoch synchronously.
func (s *Server) RefreshView(name string) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	sc := s.sched
	sc.mu.Lock()
	vs, ok := sc.views[name]
	if !ok {
		sc.mu.Unlock()
		return fmt.Errorf("serve: unknown view %q", name)
	}
	vs.forceRefresh = true
	sc.mu.Unlock()
	return s.runEpoch()
}

// RefreshAllViews forces every maintained view to refresh — regardless of
// policy — in one synchronous maintenance epoch.
func (s *Server) RefreshAllViews() error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	sc := s.sched
	sc.mu.Lock()
	for _, vs := range sc.views {
		vs.forceRefresh = true
	}
	sc.mu.Unlock()
	return s.runEpoch()
}

// Views returns the currently maintained view names, sorted.
func (s *Server) Views() []string {
	sc := s.sched
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]string, 0, len(sc.views))
	for name := range sc.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (sc *scheduler) totalPendingLocked() int {
	total := 0
	for _, rows := range sc.buf {
		total += len(rows)
	}
	return total
}

// hasWork reports whether an epoch has anything to do: buffered rows to
// land, a forced refresh, or a view needing recovery (open/half-open
// breaker, or lag left by a failed refresh) whose policy lets this epoch
// act. A manual view's permanent lag is deliberate and does not keep the
// scheduler spinning; only RefreshView clears it.
func (sc *scheduler) hasWork() bool {
	now := time.Now()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.bufRows > 0 {
		return true
	}
	for _, vs := range sc.views {
		if vs.forceRefresh {
			return true
		}
		if (vs.lag > 0 || vs.state != BreakerClosed) && vs.policyDue(now) {
			return true
		}
	}
	return false
}

// take removes and returns the staged buffer plus the journal commit
// watermark covering it (ackLSN), the previous take's watermark (floorLSN —
// together they bound the epoch's lineage range (floorLSN, ackLSN]), the
// number of ingest batches staged, and the sampled span contexts that rode
// in with them.
func (sc *scheduler) take() (staged map[string][][]algebra.Value, n int, ackLSN, floorLSN uint64, batches int, refs []ingestTraceRef) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	staged, n = sc.buf, sc.bufRows
	ackLSN, floorLSN = sc.appendLSN, sc.lastTakeLSN
	batches = sc.bufBatches
	refs = sc.pendingTraces
	sc.buf = make(map[string][][]algebra.Value)
	sc.bufRows = 0
	sc.bufBatches = 0
	sc.pendingTraces = nil
	sc.lastTakeLSN = sc.appendLSN
	return staged, n, ackLSN, floorLSN, batches, refs
}

// runEpoch is one maintenance epoch, panic-guarded: a panicking refresh
// (injected or real) is recovered into an error so the scheduler loop — and
// with it the whole serving layer — survives.
func (s *Server) runEpoch() error {
	s.maintMu.Lock()
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.stats.panics.Add(1)
				s.ctrPanics.Inc()
				s.sched.clearBuilding()
				err = fmt.Errorf("serve: maintenance epoch recovered from panic: %v", r)
			}
		}()
		err = s.runEpochLocked()
	}()
	s.maintMu.Unlock()
	// With the maintenance lock released (an auto-applied recalibration
	// re-takes it), check whether this epoch's refresh observations pushed
	// any view's calibration ratio out of the band.
	s.maybeRecalibrate()
	if err == nil {
		// Epoch-count snapshot trigger (re-takes the maintenance lock).
		s.maybeCheckpoint()
	}
	return err
}

// breakerChange is one circuit-breaker transition recorded during an epoch
// (events are emitted after the registry lock is released).
type breakerChange struct {
	view     string
	from, to BreakerState
	reason   string
}

// sloChange is one freshness-SLO episode edge (violated or recovered)
// recorded during an epoch; events are emitted after the lock is released.
type sloChange struct {
	view        string
	violated    bool
	lagRows     int
	staleEpochs int
}

// clearBuilding drops every in-flight marker; called when an epoch aborts
// before its bookkeeping pass could settle the dispatched views.
func (sc *scheduler) clearBuilding() {
	sc.mu.Lock()
	for _, vs := range sc.views {
		vs.building = false
	}
	sc.mu.Unlock()
}

// runEpochLocked is one maintenance epoch: stage the buffered rows as
// engine deltas, refresh every affected view by its strategy (incremental
// views by delta propagation before the deltas fold into the base tables,
// recompute views after), advance the epoch, and invalidate the result
// cache. Fault tolerance around that spine:
//
//   - every refresh step runs under the retry policy (backoff + jitter);
//   - an incremental refresh that stays failed falls back to recomputation;
//   - a recompute that stays failed leaves the view behind — its lag grows
//     by the rows applied this epoch — and feeds the circuit breaker: at
//     FailureThreshold consecutive failures the breaker opens, queries
//     degrade to base relations, and refresh attempts pause until Cooldown
//     elapses, after which one half-open probe recomputes the view;
//   - only a persistent ApplyDeltas failure aborts the whole epoch: the
//     deltas stay pending in the engine (propagation watermarks prevent
//     double-application) and the next epoch retries;
//   - the journal watermark is acknowledged only after ApplyDeltas lands.
func (s *Server) runEpochLocked() error {
	sc := s.sched
	if !sc.hasWork() && !s.enginePendingDeltas() {
		return nil
	}
	if err := s.inj.Hit(fault.SiteServeEpoch); err != nil {
		// Injected before anything is staged: the buffered rows survive for
		// the next epoch.
		return err
	}
	staged, n, ackLSN, floorLSN, batches, traceRefs := sc.take()
	sp := obs.Start(s.obsv, "serve.epoch", obs.Int("delta_rows", int64(n)))
	defer obs.End(sp)

	// Causal epoch trace: the epoch adopts the first sampled contributor's
	// trace ID — so one trace ID follows a delta from StreamIngest through
	// group commit, journal, and the refreshes that land it — and links the
	// remaining contributors. With tracing and the flight recorder both off,
	// every context below stays zero and every recording site no-ops.
	epochStart := time.Now()
	var ectx obs.SpanContext
	var etr *queryTrace
	if s.tracingArmed() {
		if len(traceRefs) > 0 {
			ectx = traceRefs[0].ctx.NewChild()
		} else {
			ectx = obs.NewTraceContext()
		}
		etr = s.pipelineTrace("epoch", s.epoch.Load()+1, ectx)
		for _, ref := range traceRefs {
			etr.link(ref.ctx.TraceID)
		}
	}
	// child mints a span under the epoch span; zero when the epoch is
	// untraced, so call sites stay nil-off.
	child := func() obs.SpanContext {
		if !ectx.Valid() {
			return obs.SpanContext{}
		}
		return ectx.NewChild()
	}

	tables := make([]string, 0, len(staged))
	for table := range staged {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		if err := s.db.InsertDelta(table, staged[table]...); err != nil {
			return err
		}
	}

	// The fu-driven filter: only views whose base relations gained deltas
	// refresh this epoch. appliedByTable remembers how many rows are about
	// to fold into each table — the lag a skipped or failed view accrues.
	dirty := make(map[string]bool)
	appliedByTable := make(map[string]int)
	for _, name := range s.db.Tables() {
		if rows := s.db.PendingDeltaRows(name); rows > 0 {
			dirty[name] = true
			appliedByTable[name] = rows
		}
	}
	appliedFor := func(vs *viewState) int {
		total := 0
		for rel := range vs.rels {
			total += appliedByTable[rel]
		}
		return total
	}

	now := time.Now()
	var incremental, recompute, skipped, deferred []string
	var changes []breakerChange
	sc.mu.Lock()
	for name, vs := range sc.views {
		affected := false
		for rel := range vs.rels {
			if dirty[rel] {
				affected = true
				break
			}
		}
		// Consume the one-shot force before dispatching: it overrides the
		// policy, the schedule, and the breaker cooldown.
		forced := vs.forceRefresh
		vs.forceRefresh = false
		switch {
		case forced:
			// RefreshView: an unconditional full recompute, closing the
			// breaker on success.
			vs.building = true
			recompute = append(recompute, name)
		case vs.state == BreakerOpen && now.Sub(vs.openedAt) < sc.breaker.Cooldown:
			// Open and still cooling: no refresh attempt; the view's lag
			// grows by whatever folds into its relations this epoch.
			if affected {
				skipped = append(skipped, name)
			}
		case !vs.policyDue(now):
			// The policy defers this view (manual, or scheduled with the
			// interval not yet elapsed): the deltas fold into the base
			// tables anyway and the view accrues lag until its schedule
			// fires or RefreshView forces it.
			if affected {
				deferred = append(deferred, name)
			}
		case vs.state == BreakerOpen || vs.state == BreakerHalfOpen:
			// Cooldown elapsed: half-open probe — one full recompute.
			if vs.state != BreakerHalfOpen {
				changes = append(changes, breakerChange{view: name, from: vs.state, to: BreakerHalfOpen, reason: "cooldown elapsed"})
				vs.state = BreakerHalfOpen
			}
			vs.building = true
			recompute = append(recompute, name)
		case vs.lag > 0:
			// A failed or deferred refresh left the view behind the base
			// tables; catch up by recomputation even if no new delta
			// touches it.
			vs.building = true
			recompute = append(recompute, name)
		case !affected:
		case vs.strategy == core.MaintIncremental:
			vs.building = true
			incremental = append(incremental, name)
		default:
			vs.building = true
			recompute = append(recompute, name)
		}
	}
	sc.mu.Unlock()
	sort.Strings(incremental)
	sort.Strings(skipped)
	sort.Strings(deferred)
	// Record the views this epoch consciously did NOT refresh as
	// zero-duration spans: a later forensic dump (SLO breach on a deferred
	// manual view, breaker episode on a cooling one) must show the decision
	// that let the view fall behind, not just the refreshes that ran.
	if ectx.Valid() {
		decided := time.Now()
		for _, name := range skipped {
			s.traceSpan(etr, child(), "refresh.skipped", decided, 0,
				obs.String("view", name), obs.String("reason", "breaker-cooldown"))
		}
		for _, name := range deferred {
			s.traceSpan(etr, child(), "refresh.deferred", decided, 0,
				obs.String("view", name), obs.String("reason", "policy"))
		}
	}
	// Price this epoch's delta propagations from the actual pending delta
	// fractions, before the refreshes spend their measured I/O.
	s.predictIncremental(incremental)

	// outcome of every attempted refresh; breaker bookkeeping happens in
	// one registry pass after the epoch's engine work is done. modeByView
	// records how each view's contents changed, for its lineage entry.
	outcomes := make(map[string]error)
	modeByView := make(map[string]string, len(incremental)+len(recompute))
	for _, name := range recompute {
		modeByView[name] = "recompute"
	}

	var reads, writes int64
	incDone := 0
	for _, name := range incremental {
		rctx, rstart := child(), time.Now()
		res, attempts, err := s.retryRefresh(s.baseCtx, rctx, "incremental refresh of "+name, func() (*engine.Result, error) {
			return s.db.IncrementalRefresh(name)
		})
		if errors.Is(err, engine.ErrNotIncremental) {
			// The design promised delta propagation but the plan cannot be
			// maintained that way — fall back to recomputation (not a
			// fault, not retried).
			if rctx.Valid() {
				s.traceSpan(etr, rctx, "refresh.incremental", rstart, time.Since(rstart),
					obs.String("view", name), obs.Int("attempts", int64(attempts)),
					obs.String("outcome", "not-incremental"))
			}
			modeByView[name] = "recompute"
			recompute = append(recompute, name)
			continue
		}
		if err != nil {
			// Persistently failed delta propagation: fall back to a full
			// recompute after the deltas land.
			s.stats.fallbacks.Add(1)
			s.ctrFallbacks.Inc()
			obs.Emit(s.obsv, obs.EvServeFallback,
				obs.String("view", name), obs.String("error", err.Error()))
			if rctx.Valid() {
				s.traceSpan(etr, rctx, "refresh.incremental", rstart, time.Since(rstart),
					obs.String("view", name), obs.Int("attempts", int64(attempts)),
					obs.String("outcome", "fallback"), obs.String("error", err.Error()))
			}
			modeByView[name] = "fallback-recompute"
			recompute = append(recompute, name)
			continue
		}
		if rctx.Valid() {
			s.traceSpan(etr, rctx, "refresh.incremental", rstart, time.Since(rstart),
				obs.String("view", name), obs.Int("attempts", int64(attempts)),
				obs.String("outcome", "ok"),
				obs.Int("reads", res.TotalReads()), obs.Int("writes", res.TotalWrites()))
		}
		modeByView[name] = "incremental"
		incDone++
		outcomes[name] = nil
		reads += res.TotalReads()
		writes += res.TotalWrites()
		s.observeAudit(costaudit.KindIncremental, name, res.TotalReads()+res.TotalWrites())
	}
	sort.Strings(recompute)

	actx, astart := child(), time.Now()
	if _, _, err := s.retryRefresh(s.baseCtx, actx, "delta application", func() (*engine.Result, error) {
		return nil, s.db.ApplyDeltas()
	}); err != nil {
		// Aborting here keeps the deltas pending in the engine — nothing is
		// lost, the journal watermark stays unacknowledged, and the next
		// epoch retries. Any view already swapped by an incremental refresh
		// above changed what queries can see, so the epoch still advances
		// and the cache empties.
		s.stats.refreshFailures.Add(1)
		s.ctrRefreshFail.Inc()
		s.winRefreshFail.Add(time.Now().Unix(), 1)
		sc.clearBuilding()
		if incDone > 0 {
			s.epoch.Add(1)
			s.cache.invalidate()
		}
		return fmt.Errorf("serve: applying deltas: %w", err)
	}
	if actx.Valid() {
		s.traceSpan(etr, actx, "epoch.apply", astart, time.Since(astart),
			obs.Int("delta_rows", int64(n)))
	}
	if sc.journal != nil && ackLSN > 0 {
		cstart := time.Now()
		commitErr := sc.journal.Commit(ackLSN)
		if cctx := child(); cctx.Valid() {
			cattrs := []obs.Attr{obs.Int("lsn", int64(ackLSN))}
			if commitErr != nil {
				cattrs = append(cattrs, obs.String("error", commitErr.Error()))
			}
			s.traceSpan(etr, cctx, "journal.commit", cstart, time.Since(cstart), cattrs...)
		}
		if commitErr != nil {
			// The rows are applied; a commit failure only risks a duplicate
			// replay after a crash. Surface it and carry on.
			obs.Emit(s.obsv, obs.EvServeJournal,
				obs.String("action", "commit"), obs.String("error", commitErr.Error()))
		}
	}
	if ackLSN > 0 {
		sc.mu.Lock()
		if ackLSN > sc.ackedLSN {
			sc.ackedLSN = ackLSN
		}
		sc.mu.Unlock()
	}

	recomputed := 0
	for _, name := range recompute {
		rctx, rstart := child(), time.Now()
		res, attempts, err := s.retryRefresh(s.baseCtx, rctx, "refresh of "+name, func() (*engine.Result, error) {
			return s.db.Refresh(name)
		})
		if err != nil {
			s.stats.refreshFailures.Add(1)
			s.ctrRefreshFail.Inc()
			s.winRefreshFail.Add(time.Now().Unix(), 1)
			outcomes[name] = err
			if rctx.Valid() {
				s.traceSpan(etr, rctx, "refresh.recompute", rstart, time.Since(rstart),
					obs.String("view", name), obs.Int("attempts", int64(attempts)),
					obs.String("outcome", "failed"), obs.String("error", err.Error()))
			}
			continue
		}
		if rctx.Valid() {
			s.traceSpan(etr, rctx, "refresh.recompute", rstart, time.Since(rstart),
				obs.String("view", name), obs.Int("attempts", int64(attempts)),
				obs.String("outcome", "ok"),
				obs.Int("reads", res.TotalReads()), obs.Int("writes", res.TotalWrites()))
		}
		recomputed++
		outcomes[name] = nil
		reads += res.TotalReads()
		writes += res.TotalWrites()
		s.observeAudit(costaudit.KindRecompute, name, res.TotalReads()+res.TotalWrites())
	}

	epoch := s.epoch.Add(1)
	s.cache.invalidate()

	now = time.Now()
	var stale, unhealthy int
	var sloChanges []sloChange
	sc.mu.Lock()
	for _, name := range skipped {
		if vs, ok := sc.views[name]; ok {
			vs.lag += appliedFor(vs)
		}
	}
	for _, name := range deferred {
		vs, ok := sc.views[name]
		if !ok {
			continue
		}
		// The staged rows folded into the base tables without a refresh:
		// they move from pending (buffered) to lag (applied, unreflected).
		vs.lag += appliedFor(vs)
		pending := 0
		for rel := range vs.rels {
			pending += len(sc.buf[rel])
		}
		vs.pending = pending
	}
	for name, refreshErr := range outcomes {
		vs, ok := sc.views[name]
		if !ok {
			continue
		}
		vs.building = false
		if refreshErr == nil {
			if vs.state != BreakerClosed {
				changes = append(changes, breakerChange{view: name, from: vs.state, to: BreakerClosed, reason: "refresh succeeded"})
				vs.state = BreakerClosed
			}
			vs.failures = 0
			vs.lag = 0
			vs.lastErr = ""
			vs.epoch = epoch
			vs.lastRefresh = now
			vs.staleSince = time.Time{}
			vs.staleEpochs = 0
			// Rows ingested while this epoch ran are still buffered; they
			// are the view's remaining pending count.
			pending := 0
			for rel := range vs.rels {
				pending += len(sc.buf[rel])
			}
			vs.pending = pending
			// The refresh succeeded: this epoch's journal range now backs
			// the view's contents. Fingerprints are stamped lazily (at
			// checkpoint time and on /lineage reads), never here.
			vs.addLineage(LineageEntry{
				Epoch:        epoch,
				LSNLo:        floorLSN,
				LSNHi:        ackLSN,
				DeltaRows:    n,
				DeltaBatches: batches,
				Mode:         modeByView[name],
				TraceID:      ectx.TraceID,
				At:           now,
			})
			continue
		}
		vs.failures++
		vs.lastErr = refreshErr.Error()
		vs.lag += appliedFor(vs)
		switch {
		case vs.state == BreakerHalfOpen:
			// The probe failed: back to open, restart the cooldown.
			changes = append(changes, breakerChange{view: name, from: BreakerHalfOpen, to: BreakerOpen, reason: refreshErr.Error()})
			vs.state = BreakerOpen
			vs.openedAt = now
		case vs.state == BreakerClosed && vs.failures >= sc.breaker.FailureThreshold:
			changes = append(changes, breakerChange{view: name, from: BreakerClosed, to: BreakerOpen, reason: refreshErr.Error()})
			vs.state = BreakerOpen
			vs.openedAt = now
		}
	}
	for name, vs := range sc.views {
		// Any view still flagged in-flight was dispatched but never reached
		// an outcome (incremental fallback that then failed is an outcome;
		// this is belt-and-braces for aborted paths).
		vs.building = false
		// Staleness accrual and the SLO state machine: a view ending the
		// epoch behind starts (or continues) a stale episode; a breach
		// flips the latch exactly once per episode.
		if vs.lag > 0 {
			if vs.staleSince.IsZero() {
				vs.staleSince = now
			}
			vs.staleEpochs++
		}
		breached := vs.sloBreached(now)
		if breached != vs.sloViolated {
			vs.sloViolated = breached
			if breached {
				vs.sloViolations++
			}
			sloChanges = append(sloChanges, sloChange{
				view:        name,
				violated:    breached,
				lagRows:     vs.lag,
				staleEpochs: vs.staleEpochs,
			})
		}
		stale += vs.pending
		if vs.degrading(sc.breaker, now) {
			unhealthy++
		}
	}
	sc.mu.Unlock()

	var breachedViews []string
	for _, ch := range sloChanges {
		action := "recovered"
		if ch.violated {
			action = "violated"
			breachedViews = append(breachedViews, ch.view)
			s.stats.sloViolations.Add(1)
			s.ctrSLOViolations.Inc()
		}
		obs.Emit(s.obsv, obs.EvServeSLO,
			obs.String("view", ch.view),
			obs.String("action", action),
			obs.Int("lag_rows", int64(ch.lagRows)),
			obs.Int("stale_epochs", int64(ch.staleEpochs)))
	}

	trips := 0
	var tripped []string
	for _, ch := range changes {
		if ch.to == BreakerOpen {
			trips++
			tripped = append(tripped, ch.view)
		}
		obs.Emit(s.obsv, obs.EvServeBreaker,
			obs.String("view", ch.view),
			obs.String("from", ch.from.String()),
			obs.String("to", ch.to.String()),
			obs.String("reason", ch.reason))
	}
	if trips > 0 {
		s.stats.breakerTrips.Add(int64(trips))
		s.ctrBreakerTrips.Add(int64(trips))
	}

	// Forensic flight dumps: one per epoch per episode kind, taken after the
	// epoch's refresh (and deliberately-not-refreshed) spans landed in the
	// recorder, so the dump shows the recent past that led to the episode.
	if len(breachedViews) > 0 {
		sort.Strings(breachedViews)
		s.dumpFlight("slo_breach",
			obs.Int("epoch", int64(epoch)),
			obs.String("views", strings.Join(breachedViews, ",")))
	}
	if len(tripped) > 0 {
		sort.Strings(tripped)
		s.dumpFlight("breaker_open",
			obs.Int("epoch", int64(epoch)),
			obs.String("views", strings.Join(tripped, ",")))
	}

	s.stats.epochs.Add(1)
	s.stats.incRefreshes.Add(int64(incDone))
	s.stats.recomputes.Add(int64(recomputed))
	s.stats.refreshReads.Add(reads)
	s.stats.refreshWrites.Add(writes)
	s.ctrEpochs.Inc()
	s.ctrRefreshR.Add(reads)
	s.ctrRefreshW.Add(writes)
	s.gStaleRows.Set(float64(stale))
	s.gUnhealthy.Set(float64(unhealthy))

	if ectx.Valid() {
		// Stamp each contributor's ingest trace with the epoch that landed
		// it, close the epoch's own span tree, and publish the join point
		// that lets the next sampled query complete the causal chain.
		landed := time.Now()
		for _, ref := range traceRefs {
			s.traceSpan(ref.trace, ref.ctx.NewChild(), "epoch.landed", landed, 0,
				obs.Int("epoch", int64(epoch)),
				obs.Int("epoch_trace_id", int64(ectx.TraceID)))
		}
		s.traceSpan(etr, ectx, "serve.epoch", epochStart, time.Since(epochStart),
			obs.Int("epoch", int64(epoch)),
			obs.Int("delta_rows", int64(n)),
			obs.Int("delta_batches", int64(batches)),
			obs.Int("lsn_lo", int64(floorLSN)),
			obs.Int("lsn_hi", int64(ackLSN)),
			obs.Int("incremental", int64(incDone)),
			obs.Int("recomputed", int64(recomputed)))
		etr.finish()
		s.epochLink.Store(&epochTraceLink{epoch: epoch, traceID: ectx.TraceID, ctx: ectx, trace: etr})
	}

	obs.Emit(s.obsv, obs.EvServeEpoch,
		obs.Int("epoch", int64(epoch)),
		obs.Int("delta_rows", int64(n)),
		obs.Int("incremental", int64(incDone)),
		obs.Int("recomputed", int64(recomputed)),
		obs.Int("failed", int64(len(outcomes)-incDone-recomputed)),
		obs.Int("reads", reads),
		obs.Int("writes", writes))
	return nil
}

// enginePendingDeltas reports whether the engine holds pending deltas
// beyond the scheduler's own buffer (e.g. injected directly via the DB).
func (s *Server) enginePendingDeltas() bool {
	for _, name := range s.db.Tables() {
		if s.db.PendingDeltaRows(name) > 0 {
			return true
		}
	}
	return false
}
