package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/obs"
)

// Staleness reports how far one materialized view lags the ingested
// deltas.
type Staleness struct {
	// Strategy is the view's maintenance strategy ("incremental" or
	// "recompute").
	Strategy string
	// Epoch is the refresh epoch at the view's last refresh (0 if never
	// refreshed since serving started).
	Epoch uint64
	// PendingRows counts ingested base-table rows the view does not
	// reflect yet.
	PendingRows int
	// LastRefresh is when the scheduler last refreshed the view (zero if
	// never).
	LastRefresh time.Time
}

// viewState is the scheduler's registry entry for one maintained view.
type viewState struct {
	name     string
	strategy core.MaintenanceStrategy
	// rels is the set of base relations the view is computed from — the
	// fu-driven filter: an epoch only refreshes views whose relations
	// gained deltas.
	rels map[string]bool

	epoch       uint64
	lastRefresh time.Time
	pending     int
}

// scheduler buffers ingested delta rows and turns them into maintenance
// epochs. The loop goroutine fires on a filled batch or a timer; Flush runs
// an epoch synchronously. All engine maintenance happens under the server's
// maintMu.
type scheduler struct {
	s     *Server
	batch int
	kick  chan struct{}

	ticker *time.Ticker

	// mu guards the delta buffer and the view registry.
	mu      sync.Mutex
	buf     map[string][][]algebra.Value
	bufRows int
	views   map[string]*viewState
}

func newScheduler(s *Server, cfg Config) (*scheduler, error) {
	batch := cfg.DeltaBatch
	if batch <= 0 {
		batch = DefaultDeltaBatch
	}
	sc := &scheduler{
		s:     s,
		batch: batch,
		kick:  make(chan struct{}, 1),
		buf:   make(map[string][][]algebra.Value),
		views: make(map[string]*viewState, len(cfg.Views)),
	}
	if cfg.RefreshInterval > 0 {
		sc.ticker = time.NewTicker(cfg.RefreshInterval)
	}
	for _, vs := range cfg.Views {
		v, err := s.db.View(vs.Name)
		if err != nil {
			return nil, fmt.Errorf("serve: view %q is not materialized in the DB: %w", vs.Name, err)
		}
		rels, err := baseRelationsOf(s.db, v.Plan)
		if err != nil {
			return nil, err
		}
		sc.views[vs.Name] = &viewState{name: vs.Name, strategy: vs.Strategy, rels: rels}
	}
	return sc, nil
}

// baseRelationsOf collects the base relations a plan scans, following
// view references transitively.
func baseRelationsOf(db *engine.DB, plan algebra.Node) (map[string]bool, error) {
	rels := make(map[string]bool)
	var walkErr error
	var visit func(n algebra.Node)
	visit = func(n algebra.Node) {
		algebra.Walk(n, func(m algebra.Node) {
			scan, ok := m.(*algebra.Scan)
			if !ok || walkErr != nil {
				return
			}
			if _, err := db.Table(scan.Relation); err == nil {
				rels[scan.Relation] = true
				return
			}
			v, err := db.View(scan.Relation)
			if err != nil {
				walkErr = fmt.Errorf("serve: plan scans unknown relation %q", scan.Relation)
				return
			}
			visit(v.Plan)
		})
	}
	visit(plan)
	return rels, walkErr
}

func (sc *scheduler) startLoop() {
	sc.s.wg.Add(1)
	go sc.loop()
}

func (sc *scheduler) loop() {
	defer sc.s.wg.Done()
	var tick <-chan time.Time
	if sc.ticker != nil {
		tick = sc.ticker.C
	}
	for {
		select {
		case <-sc.s.closed:
			return
		case <-sc.kick:
		case <-tick:
		}
		// A failed epoch is a server-level defect; surface it through the
		// observer rather than dying silently.
		if err := sc.s.runEpoch(); err != nil {
			obs.Emit(sc.s.obsv, obs.EvServeEpoch, obs.String("error", err.Error()))
		}
	}
}

func (sc *scheduler) stopTicker() {
	if sc.ticker != nil {
		sc.ticker.Stop()
	}
}

// Ingest stages delta rows for a base table. The rows become visible only
// when the next maintenance epoch lands (batch filled, timer, or Flush).
func (s *Server) Ingest(table string, rows ...[]algebra.Value) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	t, err := s.db.Table(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("serve: row width %d does not match schema width %d of %s",
				len(r), t.Schema.Len(), table)
		}
	}
	sc := s.sched
	sc.mu.Lock()
	sc.buf[table] = append(sc.buf[table], rows...)
	sc.bufRows += len(rows)
	for _, vs := range sc.views {
		if vs.rels[table] {
			vs.pending += len(rows)
		}
	}
	full := sc.bufRows >= sc.batch
	stale := sc.totalPendingLocked()
	sc.mu.Unlock()

	s.stats.deltaRows.Add(int64(len(rows)))
	s.ctrDeltaRows.Add(int64(len(rows)))
	s.gStaleRows.Set(float64(stale))
	if full {
		select {
		case sc.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Flush synchronously runs one maintenance epoch over everything ingested
// so far (a no-op when nothing is pending).
func (s *Server) Flush() error { return s.runEpoch() }

// Staleness reports each maintained view's lag behind the ingested deltas.
func (s *Server) Staleness() map[string]Staleness {
	sc := s.sched
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make(map[string]Staleness, len(sc.views))
	for name, vs := range sc.views {
		out[name] = Staleness{
			Strategy:    vs.strategy.String(),
			Epoch:       vs.epoch,
			PendingRows: vs.pending,
			LastRefresh: vs.lastRefresh,
		}
	}
	return out
}

// Views returns the currently maintained view names, sorted.
func (s *Server) Views() []string {
	sc := s.sched
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]string, 0, len(sc.views))
	for name := range sc.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (sc *scheduler) totalPendingLocked() int {
	total := 0
	for _, rows := range sc.buf {
		total += len(rows)
	}
	return total
}

// take removes and returns the staged buffer.
func (sc *scheduler) take() (map[string][][]algebra.Value, int) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	staged, n := sc.buf, sc.bufRows
	sc.buf = make(map[string][][]algebra.Value)
	sc.bufRows = 0
	return staged, n
}

// runEpoch is one maintenance epoch: stage the buffered rows as engine
// deltas, refresh every affected view by its strategy (incremental views by
// delta propagation before the deltas fold into the base tables, recompute
// views after), advance the epoch, and invalidate the result cache.
func (s *Server) runEpoch() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	sc := s.sched

	staged, n := sc.take()
	if n == 0 && !s.enginePendingDeltas() {
		return nil
	}
	sp := obs.Start(s.obsv, "serve.epoch", obs.Int("delta_rows", int64(n)))
	defer obs.End(sp)

	tables := make([]string, 0, len(staged))
	for table := range staged {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		if err := s.db.InsertDelta(table, staged[table]...); err != nil {
			return err
		}
	}

	// The fu-driven filter: only views whose base relations gained deltas
	// refresh this epoch.
	dirty := make(map[string]bool)
	for _, name := range s.db.Tables() {
		if s.db.PendingDeltaRows(name) > 0 {
			dirty[name] = true
		}
	}
	var incremental, recompute []string
	sc.mu.Lock()
	for name, vs := range sc.views {
		affected := false
		for rel := range vs.rels {
			if dirty[rel] {
				affected = true
				break
			}
		}
		if !affected {
			continue
		}
		if vs.strategy == core.MaintIncremental {
			incremental = append(incremental, name)
		} else {
			recompute = append(recompute, name)
		}
	}
	sc.mu.Unlock()
	sort.Strings(incremental)
	sort.Strings(recompute)

	var reads, writes int64
	incDone := 0
	for _, name := range incremental {
		res, err := s.db.IncrementalRefresh(name)
		if errors.Is(err, engine.ErrNotIncremental) {
			// The design promised delta propagation but the plan cannot be
			// maintained that way — fall back to recomputation.
			recompute = append(recompute, name)
			continue
		}
		if err != nil {
			return err
		}
		incDone++
		reads += res.TotalReads()
		writes += res.TotalWrites()
	}
	if err := s.db.ApplyDeltas(); err != nil {
		return err
	}
	for _, name := range recompute {
		res, err := s.db.Refresh(name)
		if err != nil {
			return err
		}
		reads += res.TotalReads()
		writes += res.TotalWrites()
	}

	epoch := s.epoch.Add(1)
	s.cache.invalidate()

	now := time.Now()
	refreshed := append(append([]string(nil), incremental...), recompute...)
	var stale int
	sc.mu.Lock()
	for _, name := range refreshed {
		if vs, ok := sc.views[name]; ok {
			vs.epoch = epoch
			vs.lastRefresh = now
			vs.pending = 0
		}
	}
	stale = 0
	for _, vs := range sc.views {
		stale += vs.pending
	}
	sc.mu.Unlock()

	s.stats.epochs.Add(1)
	s.stats.incRefreshes.Add(int64(incDone))
	s.stats.recomputes.Add(int64(len(recompute)))
	s.stats.refreshReads.Add(reads)
	s.stats.refreshWrites.Add(writes)
	s.ctrEpochs.Inc()
	s.ctrRefreshR.Add(reads)
	s.ctrRefreshW.Add(writes)
	s.gStaleRows.Set(float64(stale))

	obs.Emit(s.obsv, obs.EvServeEpoch,
		obs.Int("epoch", int64(epoch)),
		obs.Int("delta_rows", int64(n)),
		obs.Int("incremental", int64(incDone)),
		obs.Int("recomputed", int64(len(recompute))),
		obs.Int("reads", reads),
		obs.Int("writes", writes))
	return nil
}

// enginePendingDeltas reports whether the engine holds pending deltas
// beyond the scheduler's own buffer (e.g. injected directly via the DB).
func (s *Server) enginePendingDeltas() bool {
	for _, name := range s.db.Tables() {
		if s.db.PendingDeltaRows(name) > 0 {
			return true
		}
	}
	return false
}
