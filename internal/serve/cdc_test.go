package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/warehousekit/mvpp/internal/engine"
)

// waitBuffered polls the change feed until it holds want rows (the parked
// group of a concurrent StreamIngest) or the deadline expires.
func waitBuffered(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.feed.buffered() != want {
		if time.Now().After(deadline) {
			t.Fatalf("change feed never reached %d buffered rows (have %d)", want, s.feed.buffered())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestStreamIngestGroupCommitJournals: a StreamIngest call returns only
// after its group commit journaled (Source "stream") and staged the rows;
// the next Flush lands them in the views.
func TestStreamIngestGroupCommitJournals(t *testing.T) {
	j := engine.NewMemJournal()
	s, _ := serveFixture(t, Config{DeltaBatch: 1 << 20, Journal: j})
	ctx := context.Background()

	before, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}

	div, prod := deltaPair(1)
	if err := s.StreamIngest("Division", div); err != nil {
		t.Fatal(err)
	}
	if err := s.StreamIngest("Product", prod); err != nil {
		t.Fatal(err)
	}

	// A nil return means journaled: both batches are write-ahead records
	// tagged with the streaming source, not yet acked.
	recs, err := j.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("pending journal records = %d, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Source != "stream" {
			t.Errorf("journal record for %s has source %q, want \"stream\"", r.Table, r.Source)
		}
	}
	accepted, committed := s.IngestWatermarks()
	if accepted != 2 || committed != 2 {
		t.Errorf("watermarks = %d/%d, want 2/2 (nothing in flight)", accepted, committed)
	}
	if st := s.Staleness()["tmp2"]; st.PendingRows == 0 {
		t.Error("group-committed rows are not staged for the next epoch")
	}
	if got := s.Stats(); got.StreamRows != 2 || got.StreamGroups != 2 {
		t.Errorf("stream stats = %d rows / %d groups, want 2/2", got.StreamRows, got.StreamGroups)
	}

	// The epoch lands the staged rows: the view gains the delta row and the
	// journal is acked.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Query(ctx, "QLA")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.Table.NumRows(), before.Table.NumRows()+1; got != want {
		t.Errorf("view has %d rows after the epoch, want %d", got, want)
	}
	recs, err = j.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("journal still has %d pending records after the epoch landed", len(recs))
	}
}

// TestStreamBackpressureShedsAfterDeadline: a full change feed blocks the
// caller, then sheds it with ErrBackpressure once the deadline passes —
// while everything actually accepted is journaled exactly once.
func TestStreamBackpressureShedsAfterDeadline(t *testing.T) {
	j := engine.NewMemJournal()
	const deadline = 30 * time.Millisecond
	s, _ := serveFixture(t, Config{
		DeltaBatch: 1 << 20,
		Journal:    j,
		Ingest: IngestConfig{
			BufferRows:    4,
			BlockDeadline: deadline,
			GroupRows:     1000,                   // never fills: groups wait for the linger
			GroupLinger:   300 * time.Millisecond, // parks the filler long past the shed
		},
	})

	// Fill the feed to capacity from a helper goroutine; it parks on the
	// 300ms linger, holding the buffer full.
	fills := make(chan error, 1)
	go func() {
		div1, _ := deltaPair(1)
		div2, _ := deltaPair(2)
		div3, _ := deltaPair(3)
		div4, _ := deltaPair(4)
		fills <- s.StreamIngest("Division", div1, div2, div3, div4)
	}()
	waitBuffered(t, s, 4)

	// The fifth row does not fit: block, then shed at the deadline.
	div5, _ := deltaPair(5)
	start := time.Now()
	err := s.StreamIngest("Division", div5)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("over-capacity StreamIngest = %v, want ErrBackpressure", err)
	}
	if elapsed < deadline-5*time.Millisecond {
		t.Errorf("shed after %v, want the caller to block for ~%v first", elapsed, deadline)
	}
	if st := s.Stats(); st.StreamBlocked != 1 || st.StreamShed != 1 {
		t.Errorf("blocked/shed = %d/%d, want 1/1", st.StreamBlocked, st.StreamShed)
	}

	// An oversized batch is shed without blocking.
	d1, _ := deltaPair(6)
	d2, _ := deltaPair(7)
	d3, _ := deltaPair(8)
	d4, _ := deltaPair(9)
	d5, _ := deltaPair(10)
	start = time.Now()
	if err := s.StreamIngest("Division", d1, d2, d3, d4, d5); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("oversized StreamIngest = %v, want ErrBackpressure", err)
	}
	if since := time.Since(start); since > deadline {
		t.Errorf("oversized batch blocked for %v before shedding; want an immediate refusal", since)
	}

	// The filler self-flushes after its linger and returns nil — and its 4
	// rows are journaled exactly once. The shed rows never reached the
	// journal: accepted ⇒ journaled, shed ⇒ nothing.
	if err := <-fills; err != nil {
		t.Fatalf("the accepted filler call failed: %v", err)
	}
	recs, err := j.Pending()
	if err != nil {
		t.Fatal(err)
	}
	var journaled int
	for _, r := range recs {
		if r.Source != "stream" {
			t.Errorf("journal record source %q, want \"stream\"", r.Source)
		}
		journaled += len(r.Rows)
	}
	if journaled != 4 {
		t.Errorf("journaled rows = %d, want exactly the 4 accepted", journaled)
	}
	accepted, committed := s.IngestWatermarks()
	if accepted != 1 || committed != 1 {
		t.Errorf("watermarks = %d/%d, want 1/1 (shed calls are never accepted)", accepted, committed)
	}
}

// TestStreamCloseDrainsFeed: Close flushes the final partial group first —
// parked callers get their (successful) outcome, the rows are journaled —
// and only then refuses new work. Close stays idempotent.
func TestStreamCloseDrainsFeed(t *testing.T) {
	j := engine.NewMemJournal()
	s, _ := serveFixture(t, Config{
		DeltaBatch: 1 << 20,
		Journal:    j,
		Ingest: IngestConfig{
			GroupRows:   1000,
			GroupLinger: time.Minute, // no self-flush: only Close drains
		},
	})

	done := make(chan error, 1)
	go func() {
		div1, _ := deltaPair(2)
		div2, _ := deltaPair(3)
		done <- s.StreamIngest("Division", div1, div2)
	}()
	waitBuffered(t, s, 2)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("parked StreamIngest during Close = %v, want nil (drained)", err)
	}
	recs, err := j.Pending()
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for _, r := range recs {
		rows += len(r.Rows)
	}
	if rows != 2 {
		t.Errorf("journaled rows after the Close drain = %d, want 2", rows)
	}
	accepted, committed := s.IngestWatermarks()
	if accepted != committed {
		t.Errorf("watermarks diverge after Close: %d/%d", accepted, committed)
	}

	div, _ := deltaPair(4)
	if err := s.StreamIngest("Division", div); !errors.Is(err, ErrClosed) {
		t.Errorf("StreamIngest after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}
