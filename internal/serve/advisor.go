package serve

import (
	"errors"
	"fmt"
	"sort"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/obs"
)

// Advice is the advisor's proposal: what the Figure 9 heuristic would
// materialize for the workload as actually observed, against what the
// warehouse currently stores.
type Advice struct {
	// Observed is the measured per-query frequency, scaled so its sum
	// matches the design-time workload volume.
	Observed map[string]float64
	// Current and Proposed are the view sets (sorted names).
	Current, Proposed []string
	// Add, Drop, Keep decompose Proposed against Current.
	Add, Drop, Keep []string
	// CurrentTotal and ProposedTotal price both sets per period under the
	// observed frequencies (query processing + view maintenance, in block
	// accesses).
	CurrentTotal, ProposedTotal float64
	// SLOViolators lists currently maintained views whose freshness SLO is
	// breached at advice time (sorted) — chronic violators are re-selection
	// candidates: a view the scheduler cannot keep fresh under its policy
	// may not be worth materializing at all.
	SLOViolators []string

	selection *core.SelectionResult
}

// Changed reports whether the advisor proposes a different view set.
func (a *Advice) Changed() bool { return len(a.Add) > 0 || len(a.Drop) > 0 }

// ObservedFrequencies returns the workload frequencies the server has
// actually seen, scaled so their sum equals the design-time sum (keeping
// the query-vs-maintenance balance comparable to the design's). Before any
// query ran, the design-time frequencies are returned unchanged.
func (s *Server) ObservedFrequencies() map[string]float64 {
	out := make(map[string]float64, len(s.queries))
	var designed, observed float64
	for _, qs := range s.queries {
		designed += qs.spec.Frequency
		observed += float64(qs.observed.Load())
	}
	if observed == 0 {
		for name, qs := range s.queries {
			out[name] = qs.spec.Frequency
		}
		return out
	}
	scale := designed / observed
	for name, qs := range s.queries {
		out[name] = float64(qs.observed.Load()) * scale
	}
	return out
}

// Advise re-runs the paper's view selection under the observed query
// frequencies and reports what should change. It does not touch the
// running warehouse; pass the advice to ApplyAdvice to act on it.
func (s *Server) Advise() (*Advice, error) {
	return s.adviseWith(s.ObservedFrequencies())
}

// adviseWith is the selection behind Advise and AdviseCalibrated: re-run
// Figure 9 under the given per-query frequencies and price the current set
// against the proposal.
func (s *Server) adviseWith(observed map[string]float64) (*Advice, error) {
	if s.mvpp == nil || s.model == nil {
		return nil, errors.New("serve: advisor needs an MVPP and a cost model in the config")
	}
	s.advMu.Lock()
	defer s.advMu.Unlock()

	sel, err := s.mvpp.ReselectFrequencies(s.model, observed, s.selectOpts)
	if err != nil {
		return nil, err
	}
	current := s.Views()
	proposed := sel.Materialized.Names(s.mvpp)
	sort.Strings(proposed)

	curCosts, err := s.mvpp.EvaluateUnderFrequencies(s.model, observed, current)
	if err != nil {
		return nil, fmt.Errorf("serve: pricing current views under observed frequencies: %w", err)
	}

	a := &Advice{
		Observed:      observed,
		Current:       current,
		Proposed:      proposed,
		CurrentTotal:  curCosts.Total,
		ProposedTotal: sel.Costs.Total,
		selection:     sel,
	}
	curSet := make(map[string]bool, len(current))
	for _, name := range current {
		curSet[name] = true
	}
	propSet := make(map[string]bool, len(proposed))
	for _, name := range proposed {
		propSet[name] = true
		if curSet[name] {
			a.Keep = append(a.Keep, name)
		} else {
			a.Add = append(a.Add, name)
		}
	}
	for _, name := range current {
		if !propSet[name] {
			a.Drop = append(a.Drop, name)
		}
	}
	for name, st := range s.Staleness() {
		if st.SLOViolated {
			a.SLOViolators = append(a.SLOViolators, name)
		}
	}
	sort.Strings(a.SLOViolators)

	obs.Emit(s.obsv, obs.EvServeAdvice,
		obs.Int("add", int64(len(a.Add))),
		obs.Int("drop", int64(len(a.Drop))),
		obs.Int("keep", int64(len(a.Keep))),
		obs.Float("current_total", a.CurrentTotal),
		obs.Float("proposed_total", a.ProposedTotal))
	return a, nil
}

// ApplyAdvice hot-swaps the proposed view set into the running warehouse:
// added views materialize (in MVPP topological order, so stacked views see
// their inputs), dropped views disappear, the maintenance registry adopts
// the proposal's strategies, and the epoch advances (invalidating the
// result cache). In-flight queries are safe: a plan rewritten onto a view
// dropped mid-flight falls back to its base-table form.
func (s *Server) ApplyAdvice(a *Advice) error {
	if a == nil || a.selection == nil {
		return errors.New("serve: ApplyAdvice needs advice produced by Advise")
	}
	if s.mvpp == nil {
		return errors.New("serve: advisor needs an MVPP in the config")
	}
	s.advMu.Lock()
	defer s.advMu.Unlock()
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	addSet := make(map[string]bool, len(a.Add))
	for _, name := range a.Add {
		addSet[name] = true
	}
	// Materialize additions before dropping anything, walking the MVPP's
	// vertex list (topological order) so views over views compose.
	for _, v := range s.mvpp.Vertices {
		if !addSet[v.Name] {
			continue
		}
		if _, err := s.db.Materialize(v.Name, v.Op); err != nil {
			return fmt.Errorf("serve: materializing %s: %w", v.Name, err)
		}
	}
	for _, name := range a.Drop {
		if err := s.db.DropView(name); err != nil {
			return fmt.Errorf("serve: dropping %s: %w", name, err)
		}
	}

	// Rebuild the scheduler's view registry for the new set.
	sc := s.sched
	views := make(map[string]*viewState, len(a.Proposed))
	epoch := s.epoch.Add(1)
	s.cache.invalidate()
	for _, name := range a.Proposed {
		v, err := s.db.View(name)
		if err != nil {
			return err
		}
		rels, err := baseRelationsOf(s.db, v.Plan)
		if err != nil {
			return err
		}
		strategy := a.selection.Plans[name]
		views[name] = &viewState{
			name: name, strategy: strategy, rels: rels, epoch: epoch,
			policy: sc.defaultPolicy.orDefault(RefreshPolicy{}),
			slo:    sc.defaultSLO,
		}
	}
	sc.mu.Lock()
	// Carry over pending counts, refresh times, and the refresh-policy
	// plane's state (policy, SLO, stale episode, violation history) for kept
	// views; freshly materialized views start clean under the defaults (they
	// were computed from the current base state).
	for name, vs := range views {
		if old, ok := sc.views[name]; ok {
			vs.pending = old.pending
			vs.lastRefresh = old.lastRefresh
			vs.epoch = old.epoch
			vs.policy = old.policy
			vs.slo = old.slo
			vs.staleSince = old.staleSince
			vs.staleEpochs = old.staleEpochs
			vs.sloViolated = old.sloViolated
			vs.sloViolations = old.sloViolations
		}
	}
	sc.views = views
	sc.mu.Unlock()

	obs.Emit(s.obsv, obs.EvServeSwap,
		obs.Int("added", int64(len(a.Add))),
		obs.Int("dropped", int64(len(a.Drop))),
		obs.Int("epoch", int64(epoch)))

	// The rewritten plans and the stored view set both changed: re-register
	// every prediction against the new warehouse shape.
	s.repriceAudit()
	return nil
}
