package serve

import (
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"github.com/warehousekit/mvpp/internal/engine"
)

// Refresh lineage: every epoch that changes a view's contents appends one
// LineageEntry to the view's bounded history — which epoch, which journal
// LSN range, how many delta rows and batches, how the refresh ran
// (incremental, recompute, fallback...), and the causal trace ID when the
// epoch was sampled. The LSN ranges of consecutive entries partition the
// journal: entry i+1's low LSN equals (or exceeds, across restarts) entry
// i's high LSN, so lineage answers "exactly which journal records produced
// this view's contents" — and after crash recovery the fingerprint of the
// restored table must match the fingerprint the lineage recorded, which
// the chaos suite verifies against journal replay.

// LineageEntry is one epoch's contribution to a view's contents.
type LineageEntry struct {
	// Epoch is the maintenance epoch that produced this entry.
	Epoch uint64 `json:"epoch"`
	// LSNLo/LSNHi bound the journal records this epoch landed: the entry
	// covers (LSNLo, LSNHi]. Consecutive entries partition the journal.
	LSNLo uint64 `json:"lsn_lo"`
	LSNHi uint64 `json:"lsn_hi"`
	// DeltaRows/DeltaBatches count the staged source rows and ingest
	// batches the epoch drained (across all tables, not just this view's).
	DeltaRows    int `json:"delta_rows,omitempty"`
	DeltaBatches int `json:"delta_batches,omitempty"`
	// Mode is how the view's contents changed: "incremental", "recompute",
	// "fallback-recompute", "restored" (from snapshot at boot), or
	// "recovered-recompute" (recomputed during recovery).
	Mode string `json:"mode"`
	// TraceID is the causal trace of the epoch that produced the entry
	// (0 when the epoch was unsampled).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Fingerprint is the order-insensitive FNV-64a digest of the view's
	// contents after the refresh; "" until computed (fingerprints are
	// lazy — stamped at checkpoint time and on /lineage reads, never on
	// the refresh hot path).
	Fingerprint string `json:"fingerprint,omitempty"`
	// At is when the entry was recorded.
	At time.Time `json:"at"`
}

// ViewLineage is the exported lineage of one view: its recent entries plus
// the current high-water identity of its contents.
type ViewLineage struct {
	View string `json:"view"`
	// CurrentEpoch/LSNHi identify the newest entry; Fingerprint digests
	// the view's live contents at export time.
	CurrentEpoch uint64 `json:"current_epoch"`
	LSNHi        uint64 `json:"lsn_hi"`
	Fingerprint  string `json:"fingerprint"`
	// Entries is the bounded history, oldest first.
	Entries []LineageEntry `json:"entries"`
}

// lineageKeep bounds each view's retained lineage history.
const lineageKeep = 32

// addLineage appends one entry to the view's bounded history. Caller holds
// the scheduler mutex.
func (vs *viewState) addLineage(e LineageEntry) {
	vs.lineage = append(vs.lineage, e)
	if len(vs.lineage) > lineageKeep {
		vs.lineage = vs.lineage[len(vs.lineage)-lineageKeep:]
	}
}

// tableFingerprint digests a table's contents order-insensitively: each
// row rendered as its values joined with "|", rows sorted, FNV-64a over
// the sorted sequence. Two tables with the same multiset of rows hash
// equal regardless of physical order — which is what recovery restores.
func tableFingerprint(t *engine.Table) string {
	rows := make([]string, 0, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		tup := t.Row(i)
		parts := make([]string, len(tup.Values))
		for j, v := range tup.Values {
			parts[j] = v.String()
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	h := fnv.New64a()
	for _, r := range rows {
		h.Write([]byte(r))
		h.Write([]byte{0})
	}
	return hexDigest(h.Sum64())
}

func hexDigest(v uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Lineage exports every view's refresh lineage. The per-view history is
// copied under the scheduler lock; the live-contents fingerprints are
// computed outside it from the engine's current tables.
func (s *Server) Lineage() map[string]ViewLineage {
	sc := s.sched
	sc.mu.Lock()
	out := make(map[string]ViewLineage, len(sc.views))
	for name, vs := range sc.views {
		vl := ViewLineage{View: name, Entries: append([]LineageEntry(nil), vs.lineage...)}
		if n := len(vs.lineage); n > 0 {
			last := vs.lineage[n-1]
			vl.CurrentEpoch = last.Epoch
			vl.LSNHi = last.LSNHi
		}
		out[name] = vl
	}
	sc.mu.Unlock()
	for name, vl := range out {
		if mv, err := s.db.View(name); err == nil {
			vl.Fingerprint = tableFingerprint(mv.Table())
			out[name] = vl
		}
	}
	return out
}
