package serve

import (
	"fmt"
	"strings"
	"time"
)

// PolicyKind names one point on the refresh-policy spectrum. The zero value
// is "unset" and resolves to the server's default policy (on-commit unless
// configured otherwise), so a zero ViewSpec keeps today's behavior.
type PolicyKind uint8

const (
	policyUnset PolicyKind = iota
	// PolicyOnCommit refreshes the view in every maintenance epoch that
	// touches its base relations — the legacy behavior and the default.
	PolicyOnCommit
	// PolicyManual never refreshes the view automatically: deltas fold into
	// the base tables and the view accrues lag until RefreshView is called.
	PolicyManual
	// PolicyScheduled refreshes the view only when its interval has elapsed
	// since the last refresh ("nightly summary tables"); between refreshes
	// the view accrues lag like a manual one.
	PolicyScheduled
	// PolicyStreaming refreshes the view in every epoch, like on-commit, but
	// marks it as fed by the CDC streaming path (StreamIngest): group-committed
	// delta batches with monotone watermarks and bounded-buffer backpressure.
	PolicyStreaming
)

// RefreshPolicy is one view's refresh policy: the kind plus, for scheduled
// views, the refresh interval.
type RefreshPolicy struct {
	Kind PolicyKind
	// Every is the scheduled refresh interval; ignored for other kinds.
	Every time.Duration
}

// Convenience constructors for the four policies.
func OnCommitPolicy() RefreshPolicy  { return RefreshPolicy{Kind: PolicyOnCommit} }
func ManualPolicy() RefreshPolicy    { return RefreshPolicy{Kind: PolicyManual} }
func StreamingPolicy() RefreshPolicy { return RefreshPolicy{Kind: PolicyStreaming} }

// ScheduledPolicy refreshes every d (d <= 0 falls back to on-commit).
func ScheduledPolicy(d time.Duration) RefreshPolicy {
	if d <= 0 {
		return OnCommitPolicy()
	}
	return RefreshPolicy{Kind: PolicyScheduled, Every: d}
}

// String renders the policy in the form ParsePolicy accepts.
func (p RefreshPolicy) String() string {
	switch p.Kind {
	case PolicyManual:
		return "manual"
	case PolicyScheduled:
		return fmt.Sprintf("scheduled:%s", p.Every)
	case PolicyStreaming:
		return "streaming"
	default:
		return "on-commit"
	}
}

// orDefault resolves an unset policy against the configured default (and
// an unset default against on-commit).
func (p RefreshPolicy) orDefault(d RefreshPolicy) RefreshPolicy {
	if p.Kind != policyUnset {
		return p
	}
	if d.Kind != policyUnset {
		return d
	}
	return OnCommitPolicy()
}

// ParsePolicy parses "manual", "on-commit", "streaming", or
// "scheduled:<duration>" (e.g. "scheduled:30s", "scheduled:1h") into a
// RefreshPolicy.
func ParsePolicy(s string) (RefreshPolicy, error) {
	switch strings.TrimSpace(s) {
	case "manual":
		return ManualPolicy(), nil
	case "on-commit", "oncommit", "":
		return OnCommitPolicy(), nil
	case "streaming":
		return StreamingPolicy(), nil
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(s), "scheduled:"); ok {
		d, err := time.ParseDuration(rest)
		if err != nil {
			return RefreshPolicy{}, fmt.Errorf("serve: bad scheduled interval %q: %v", rest, err)
		}
		if d <= 0 {
			return RefreshPolicy{}, fmt.Errorf("serve: scheduled interval must be positive, got %q", rest)
		}
		return ScheduledPolicy(d), nil
	}
	return RefreshPolicy{}, fmt.Errorf("serve: unknown refresh policy %q (want manual | on-commit | scheduled:<duration> | streaming)", s)
}

// ViewStatus is one view's lifecycle position, driven by refresh outcomes:
//
//	VALID    the stored rows reflect every landed delta
//	STALE    landed deltas the view does not reflect (deferred policy,
//	         failed refresh, or a violated freshness SLO)
//	BUILDING a refresh is running right now
//	ERROR    the circuit breaker is not closed (refreshes keep failing)
//
// STALE and ERROR views with breached SLOs or open breakers degrade their
// queries to base-relation plans — always correct, flagged Degraded.
type ViewStatus uint8

const (
	StatusValid ViewStatus = iota
	StatusStale
	StatusBuilding
	StatusError
)

// String renders the status in the conventional upper-case form.
func (s ViewStatus) String() string {
	switch s {
	case StatusStale:
		return "STALE"
	case StatusBuilding:
		return "BUILDING"
	case StatusError:
		return "ERROR"
	default:
		return "VALID"
	}
}

// ViewStatuses lists every status, for one-hot metric exposition.
var ViewStatuses = []ViewStatus{StatusValid, StatusStale, StatusBuilding, StatusError}

// FreshnessSLO bounds how far one view may lag the landed deltas before
// its queries degrade to base-relation plans. The zero value means no SLO.
// A violation requires actual unreflected work (lag rows): a view that is
// caught up never violates, no matter how long ago it refreshed.
type FreshnessSLO struct {
	// MaxLagEpochs allows the view to stay behind for at most that many
	// consecutive maintenance epochs (0 disables the epoch bound).
	MaxLagEpochs int
	// MaxLag allows the view to stay behind for at most that wall-clock
	// duration (0 disables the wall-clock bound).
	MaxLag time.Duration
}

// zero reports whether the SLO is unset.
func (s FreshnessSLO) zero() bool { return s.MaxLagEpochs == 0 && s.MaxLag == 0 }

// orDefault resolves an unset SLO against the configured default.
func (s FreshnessSLO) orDefault(d FreshnessSLO) FreshnessSLO {
	if s.zero() {
		return d
	}
	return s
}
