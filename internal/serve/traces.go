package serve

import (
	"sync"
	"time"

	"github.com/warehousekit/mvpp/internal/obs"
)

// Trace correlation: when Config.TraceSampleEvery is set, the router mints
// a query ID for every submission and samples every Nth query into a
// bounded in-memory ring. A sampled query records each lifecycle stage —
// admission, cache hit/miss, engine execution, degradation, reply — on its
// own trace, and mirrors every stage to the observer as an EvServeQuery
// event tagged with the same query_id, so one query's full path greps out
// of a JSON trace by ID. Unsampled queries pay one atomic increment;
// with sampling off the hot path pays nothing at all.

// TraceStage is one recorded step of a sampled query's lifecycle.
type TraceStage struct {
	// Stage is the lifecycle step: "admit", "cache_hit", "cache_miss",
	// "execute", "degraded", "reply".
	Stage string `json:"stage"`
	// AtUS is microseconds since the query was admitted.
	AtUS int64 `json:"at_us"`
	// Detail carries stage-specific attributes (reads, epoch, outcome...).
	Detail map[string]any `json:"detail,omitempty"`
}

// QueryTrace is the exported lifecycle of one sampled query.
type QueryTrace struct {
	// ID is the query ID minted at router admission; every stage of this
	// query — and every EvServeQuery observer event it emitted — carries it.
	ID uint64 `json:"query_id"`
	// Query is the workload query name ("" for ad-hoc Submit calls).
	Query string `json:"query,omitempty"`
	// StartedAt is the wall-clock admission time.
	StartedAt time.Time `json:"started_at"`
	// Done reports whether the reply stage has been recorded.
	Done bool `json:"done"`
	// Stages is the lifecycle in recording order.
	Stages []TraceStage `json:"stages"`
}

// queryTrace is the live, still-mutating form of a sampled query's trace.
// The submitter and the worker both append stages; the lock is uncontended
// in practice (stages alternate across the request's channel handoff) and
// only sampled queries ever take it.
type queryTrace struct {
	id    uint64
	query string
	start time.Time

	mu     sync.Mutex
	done   bool
	stages []TraceStage
}

func (t *queryTrace) stage(name string, attrs []obs.Attr) {
	if t == nil {
		return
	}
	st := TraceStage{Stage: name, AtUS: time.Since(t.start).Microseconds()}
	if len(attrs) > 0 {
		st.Detail = make(map[string]any, len(attrs))
		for _, a := range attrs {
			st.Detail[a.Key] = a.Value
		}
	}
	t.mu.Lock()
	t.stages = append(t.stages, st)
	if name == "reply" {
		t.done = true
	}
	t.mu.Unlock()
}

func (t *queryTrace) export() QueryTrace {
	t.mu.Lock()
	out := QueryTrace{
		ID:        t.id,
		Query:     t.query,
		StartedAt: t.start,
		Done:      t.done,
		Stages:    append([]TraceStage(nil), t.stages...),
	}
	t.mu.Unlock()
	return out
}

// traceRing is a bounded ring of recent sampled traces. Traces are
// published at admission, so the ring shows in-flight queries too (Done
// false until the reply stage lands).
type traceRing struct {
	mu   sync.Mutex
	buf  []*queryTrace
	next int // overwrite cursor once the ring is full
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]*queryTrace, 0, capacity)}
}

func (r *traceRing) add(t *queryTrace) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// snapshot exports the ring's traces, oldest first.
func (r *traceRing) snapshot() []QueryTrace {
	r.mu.Lock()
	ordered := make([]*queryTrace, 0, len(r.buf))
	ordered = append(ordered, r.buf[r.next:]...)
	ordered = append(ordered, r.buf[:r.next]...)
	r.mu.Unlock()
	out := make([]QueryTrace, len(ordered))
	for i, t := range ordered {
		out[i] = t.export()
	}
	return out
}

// traceStage records one lifecycle stage on a sampled query's trace and
// mirrors it to the observer as an EvServeQuery event carrying the same
// query_id. No-op when qt is nil (query unsampled or sampling off).
func (s *Server) traceStage(qt *queryTrace, stage string, attrs ...obs.Attr) {
	if qt == nil {
		return
	}
	qt.stage(stage, attrs)
	tagged := make([]obs.Attr, 0, len(attrs)+2)
	tagged = append(tagged, obs.Int("query_id", int64(qt.id)), obs.String("stage", stage))
	tagged = append(tagged, attrs...)
	obs.Emit(s.obsv, obs.EvServeQuery, tagged...)
}

// RecentTraces returns the sampled query traces currently in the ring,
// oldest first. Nil when trace sampling is off.
func (s *Server) RecentTraces() []QueryTrace {
	if s.traces == nil {
		return nil
	}
	return s.traces.snapshot()
}
