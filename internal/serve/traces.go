package serve

import (
	"sync"
	"time"

	"github.com/warehousekit/mvpp/internal/obs"
)

// Trace correlation: when Config.TraceSampleEvery is set, the router mints
// a query ID for every submission and samples every Nth query into a
// bounded in-memory ring. A sampled query records each lifecycle stage —
// admission, cache hit/miss, engine execution, degradation, reply — on its
// own trace, and mirrors every stage to the observer as an EvServeQuery
// event tagged with the same query_id, so one query's full path greps out
// of a JSON trace by ID. Unsampled queries pay one atomic increment;
// with sampling off the hot path pays nothing at all.
//
// The same ring also carries the write path. Sampled StreamIngest batches
// mint an obs.SpanContext that rides the change feed through group commit
// and journal append; the maintenance epoch that lands the batch inherits
// the first contributor's trace ID (and links the rest), and hangs its
// per-view refresh spans under the epoch span. Checkpoints get their own
// entries. So /traces renders full causal span trees — ingest → group
// commit → journal LSN → epoch → refresh — instead of flat stage lists,
// and one trace ID follows a delta from StreamIngest to the query that
// read it.

// TraceStage is one recorded step of a sampled query's lifecycle.
type TraceStage struct {
	// Stage is the lifecycle step: "admit", "cache_hit", "cache_miss",
	// "execute", "degraded", "reply".
	Stage string `json:"stage"`
	// AtUS is microseconds since the query was admitted.
	AtUS int64 `json:"at_us"`
	// Detail carries stage-specific attributes (reads, epoch, outcome...).
	Detail map[string]any `json:"detail,omitempty"`
}

// PipelineSpan is one completed span of a pipeline trace: a timed region
// of the write path (ingest accept, group commit, journal append, epoch,
// per-view refresh, checkpoint phase) with its causal identity. Parent
// points at another span of the same trace (0 for roots), so a trace's
// spans reassemble into a tree.
type PipelineSpan struct {
	SpanID     uint64         `json:"span_id"`
	Parent     uint64         `json:"parent_span_id,omitempty"`
	Name       string         `json:"name"`
	AtUS       int64          `json:"at_us"`
	DurationUS int64          `json:"duration_us"`
	Detail     map[string]any `json:"detail,omitempty"`
}

// QueryTrace is the exported form of one sampled trace-ring entry. The
// original query-only fields keep their exact meaning; write-path entries
// (kind "ingest", "epoch", "checkpoint") additionally carry the causal
// trace ID, their span tree, and links to contributing trace IDs.
type QueryTrace struct {
	// ID is the query ID minted at router admission; every stage of this
	// query — and every EvServeQuery observer event it emitted — carries it.
	// Write-path entries reuse the field for their own sequence number.
	ID uint64 `json:"query_id"`
	// Kind distinguishes ring entries: "" or "query" for sampled queries,
	// "ingest" for StreamIngest batches, "epoch" for maintenance epochs,
	// "checkpoint" for snapshot checkpoints.
	Kind string `json:"kind,omitempty"`
	// TraceID is the causal trace this entry belongs to (0 when the entry
	// predates span propagation — plain sampled queries not joined to a
	// pipeline trace).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Query is the workload query name ("" for ad-hoc Submit calls).
	Query string `json:"query,omitempty"`
	// StartedAt is the wall-clock admission time.
	StartedAt time.Time `json:"started_at"`
	// Done reports whether the reply stage has been recorded.
	Done bool `json:"done"`
	// Stages is the lifecycle in recording order.
	Stages []TraceStage `json:"stages,omitempty"`
	// Spans is the entry's span tree (write-path entries), parent-linked
	// via PipelineSpan.Parent.
	Spans []PipelineSpan `json:"spans,omitempty"`
	// Links names other trace IDs that causally contributed to this entry
	// (e.g. the sampled ingest batches an epoch landed beyond the first,
	// whose trace ID the epoch adopts).
	Links []uint64 `json:"links,omitempty"`
}

// queryTrace is the live, still-mutating form of one trace-ring entry.
// The submitter and the worker both append stages; the lock is uncontended
// in practice (stages alternate across the request's channel handoff) and
// only sampled entries ever take it. Stages and spans keep their raw attr
// slices — the Detail maps are materialized at export time, so the serving
// hot path never builds a map.
type queryTrace struct {
	id      uint64
	kind    string
	traceID uint64
	query   string
	start   time.Time

	mu     sync.Mutex
	done   bool
	stages []stageRec
	spans  []spanRec
	links  []uint64
}

// stageRec and spanRec are the record-time forms of TraceStage and
// PipelineSpan: identical timing and identity, attrs still a slice.
type stageRec struct {
	name  string
	atUS  int64
	attrs []obs.Attr
}

type spanRec struct {
	spanID uint64
	parent uint64
	name   string
	atUS   int64
	durUS  int64
	attrs  []obs.Attr
}

func (t *queryTrace) stage(name string, attrs []obs.Attr) {
	if t == nil {
		return
	}
	st := stageRec{name: name, atUS: time.Since(t.start).Microseconds(), attrs: attrs}
	t.mu.Lock()
	t.stages = append(t.stages, st)
	if name == "reply" {
		t.done = true
	}
	t.mu.Unlock()
}

// span records one completed span on the entry's tree. started is the
// span's wall-clock start; offsets are relative to the entry's start (and
// may be negative when a contributor span began before the entry existed).
func (t *queryTrace) span(ctx obs.SpanContext, name string, started time.Time, dur time.Duration, attrs []obs.Attr) {
	if t == nil {
		return
	}
	sp := spanRec{
		spanID: ctx.SpanID,
		parent: ctx.Parent,
		name:   name,
		atUS:   started.Sub(t.start).Microseconds(),
		durUS:  dur.Microseconds(),
		attrs:  attrs,
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// link records a contributing trace ID (deduplicated, self-links dropped).
func (t *queryTrace) link(traceID uint64) {
	if t == nil || traceID == 0 || traceID == t.traceID {
		return
	}
	t.mu.Lock()
	for _, l := range t.links {
		if l == traceID {
			t.mu.Unlock()
			return
		}
	}
	t.links = append(t.links, traceID)
	t.mu.Unlock()
}

// finish marks a write-path entry complete (queries finish via the
// "reply" stage instead).
func (t *queryTrace) finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
}

func (t *queryTrace) export() QueryTrace {
	t.mu.Lock()
	out := QueryTrace{
		ID:        t.id,
		Kind:      t.kind,
		TraceID:   t.traceID,
		Query:     t.query,
		StartedAt: t.start,
		Done:      t.done,
		Links:     append([]uint64(nil), t.links...),
	}
	if len(t.stages) > 0 {
		out.Stages = make([]TraceStage, len(t.stages))
		for i, st := range t.stages {
			out.Stages[i] = TraceStage{Stage: st.name, AtUS: st.atUS, Detail: obs.AttrMap(st.attrs)}
		}
	}
	if len(t.spans) > 0 {
		out.Spans = make([]PipelineSpan, len(t.spans))
		for i, sp := range t.spans {
			out.Spans[i] = PipelineSpan{
				SpanID:     sp.spanID,
				Parent:     sp.parent,
				Name:       sp.name,
				AtUS:       sp.atUS,
				DurationUS: sp.durUS,
				Detail:     obs.AttrMap(sp.attrs),
			}
		}
	}
	t.mu.Unlock()
	return out
}

// traceRing is a bounded ring of recent sampled traces. Traces are
// published at admission, so the ring shows in-flight queries too (Done
// false until the reply stage lands).
type traceRing struct {
	mu   sync.Mutex
	buf  []*queryTrace
	next int // overwrite cursor once the ring is full
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]*queryTrace, 0, capacity)}
}

func (r *traceRing) add(t *queryTrace) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// snapshot exports the ring's traces, oldest first.
func (r *traceRing) snapshot() []QueryTrace {
	r.mu.Lock()
	ordered := make([]*queryTrace, 0, len(r.buf))
	ordered = append(ordered, r.buf[r.next:]...)
	ordered = append(ordered, r.buf[:r.next]...)
	r.mu.Unlock()
	out := make([]QueryTrace, len(ordered))
	for i, t := range ordered {
		out[i] = t.export()
	}
	return out
}

// pipelineTrace publishes a new write-path entry into the trace ring.
// Returns nil when trace sampling is off, so every recording site stays
// nil-off. The entry's ID is a per-kind sequence number minted by the
// caller (epoch number, checkpoint generation, ingest sequence).
func (s *Server) pipelineTrace(kind string, id uint64, ctx obs.SpanContext) *queryTrace {
	if s.traces == nil {
		return nil
	}
	t := &queryTrace{id: id, kind: kind, traceID: ctx.TraceID, start: time.Now()}
	s.traces.add(t)
	return t
}

// traceSpan records one completed write-path span on a ring entry and
// mirrors it into the flight recorder. Either sink may be nil.
func (s *Server) traceSpan(t *queryTrace, ctx obs.SpanContext, name string, started time.Time, dur time.Duration, attrs ...obs.Attr) {
	t.span(ctx, name, started, dur, attrs)
	s.flight.RecordSpan(ctx, name, started, dur, attrs...)
}

// traceStage records one lifecycle stage on a sampled query's trace and
// mirrors it to the observer as an EvServeQuery event carrying the same
// query_id. No-op when qt is nil (query unsampled or sampling off).
func (s *Server) traceStage(qt *queryTrace, stage string, attrs ...obs.Attr) {
	if qt == nil {
		return
	}
	qt.stage(stage, attrs)
	if s.obsv == nil {
		return
	}
	tagged := make([]obs.Attr, 0, len(attrs)+2)
	tagged = append(tagged, obs.Int("query_id", int64(qt.id)), obs.String("stage", stage))
	tagged = append(tagged, attrs...)
	obs.Emit(s.obsv, obs.EvServeQuery, tagged...)
}

// RecentTraces returns the sampled traces currently in the ring, oldest
// first. Nil when trace sampling is off.
func (s *Server) RecentTraces() []QueryTrace {
	if s.traces == nil {
		return nil
	}
	return s.traces.snapshot()
}
