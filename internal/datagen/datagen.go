// Package datagen produces deterministic synthetic data for the engine:
// the paper's five-relation member-database schema at any scale, plus a
// generic column-generator toolkit for star schemas. All generation is
// seeded, so tests and benchmarks are reproducible.
package datagen

import (
	"fmt"
	"math/rand"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/engine"
)

// Gen produces the value of one column for row i.
type Gen func(r *rand.Rand, i int) algebra.Value

// Sequence yields start+i — a dense primary key.
func Sequence(start int64) Gen {
	return func(_ *rand.Rand, i int) algebra.Value { return algebra.IntVal(start + int64(i)) }
}

// IntRange yields uniform integers in [lo, hi].
func IntRange(lo, hi int64) Gen {
	return func(r *rand.Rand, _ int) algebra.Value {
		return algebra.IntVal(lo + r.Int63n(hi-lo+1))
	}
}

// ForeignKey yields uniform references into a dimension of the given size
// (keys 0..size-1).
func ForeignKey(size int64) Gen {
	return func(r *rand.Rand, _ int) algebra.Value { return algebra.IntVal(r.Int63n(size)) }
}

// Choice yields one of the given strings uniformly.
func Choice(options ...string) Gen {
	return func(r *rand.Rand, _ int) algebra.Value {
		return algebra.StringVal(options[r.Intn(len(options))])
	}
}

// Label yields prefix plus the row number — unique readable strings.
func Label(prefix string) Gen {
	return func(_ *rand.Rand, i int) algebra.Value {
		return algebra.StringVal(fmt.Sprintf("%s%d", prefix, i))
	}
}

// DateRange yields uniform dates between two epoch days.
func DateRange(loDay, hiDay int64) Gen {
	return func(r *rand.Rand, _ int) algebra.Value {
		return algebra.DateVal(loDay + r.Int63n(hiDay-loDay+1))
	}
}

// Fill populates a table with n generated rows.
func Fill(t *engine.Table, n int, seed int64, gens []Gen) error {
	if len(gens) != t.Schema.Len() {
		return fmt.Errorf("datagen: %d generators for %d columns of %s", len(gens), t.Schema.Len(), t.Name)
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		row := make([]algebra.Value, len(gens))
		for c, g := range gens {
			row[c] = g(r, i)
		}
		if err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// PaperScale holds the row counts of the paper's Table 1, scaled.
type PaperScale struct {
	Product, Division, Order, Customer, Part int
}

// ScaleRows derives row counts at a fraction of the paper's sizes (scale 1
// = 30k products, 5k divisions, 50k orders, 20k customers, 80k parts).
func ScaleRows(scale float64) PaperScale {
	n := func(base float64) int {
		v := int(base * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return PaperScale{
		Product:  n(30000),
		Division: n(5000),
		Order:    n(50000),
		Customer: n(20000),
		Part:     n(80000),
	}
}

// Cities used for Division.city and Customer.city; "LA" receives ~2% of
// divisions, matching the paper's s = 0.02 (50 uniform cities).
var cities = func() []string {
	out := make([]string, 50)
	out[0] = "LA"
	out[1] = "SF"
	for i := 2; i < 50; i++ {
		out[i] = fmt.Sprintf("City%02d", i)
	}
	return out
}()

// July1_96 is the epoch day of the paper's date literal 7/1/96; order dates
// are uniform over 1996, giving s ≈ 0.5 for date > 7/1/96.
const (
	day19960101 = 9496
	day19961231 = 9861
)

// PaperDB builds and fills the paper's five relations at the given scale
// into a fresh database. Quantities are uniform in [1, 200] (s = 0.5 for
// quantity > 100) and dates uniform over 1996 (s ≈ 0.5 for date > 7/1/96).
func PaperDB(blockRows int, scale float64, seed int64) (*engine.DB, error) {
	db := engine.NewDB(blockRows)
	rows := ScaleRows(scale)

	specs := []struct {
		name string
		cols []algebra.Column
		n    int
		gens []Gen
	}{
		{
			name: "Product",
			cols: []algebra.Column{
				{Relation: "Product", Name: "Pid", Type: algebra.TypeInt},
				{Relation: "Product", Name: "name", Type: algebra.TypeString},
				{Relation: "Product", Name: "Did", Type: algebra.TypeInt},
			},
			n: rows.Product,
			gens: []Gen{
				Sequence(0),
				Label("product-"),
				ForeignKey(int64(rows.Division)),
			},
		},
		{
			name: "Division",
			cols: []algebra.Column{
				{Relation: "Division", Name: "Did", Type: algebra.TypeInt},
				{Relation: "Division", Name: "name", Type: algebra.TypeString},
				{Relation: "Division", Name: "city", Type: algebra.TypeString},
			},
			n: rows.Division,
			gens: []Gen{
				Sequence(0),
				Label("division-"),
				Choice(cities...),
			},
		},
		{
			name: "Order",
			cols: []algebra.Column{
				{Relation: "Order", Name: "Pid", Type: algebra.TypeInt},
				{Relation: "Order", Name: "Cid", Type: algebra.TypeInt},
				{Relation: "Order", Name: "quantity", Type: algebra.TypeInt},
				{Relation: "Order", Name: "date", Type: algebra.TypeDate},
			},
			n: rows.Order,
			gens: []Gen{
				ForeignKey(int64(rows.Product)),
				ForeignKey(int64(rows.Customer)),
				IntRange(1, 200),
				DateRange(day19960101, day19961231),
			},
		},
		{
			name: "Customer",
			cols: []algebra.Column{
				{Relation: "Customer", Name: "Cid", Type: algebra.TypeInt},
				{Relation: "Customer", Name: "name", Type: algebra.TypeString},
				{Relation: "Customer", Name: "city", Type: algebra.TypeString},
			},
			n: rows.Customer,
			gens: []Gen{
				Sequence(0),
				Label("customer-"),
				Choice(cities...),
			},
		},
		{
			name: "Part",
			cols: []algebra.Column{
				{Relation: "Part", Name: "Tid", Type: algebra.TypeInt},
				{Relation: "Part", Name: "name", Type: algebra.TypeString},
				{Relation: "Part", Name: "Pid", Type: algebra.TypeInt},
				{Relation: "Part", Name: "supplier", Type: algebra.TypeString},
			},
			n: rows.Part,
			gens: []Gen{
				Sequence(0),
				Label("part-"),
				ForeignKey(int64(rows.Product)),
				Label("supplier-"),
			},
		},
	}
	for si, spec := range specs {
		t, err := db.CreateTable(spec.name, algebra.NewSchema(spec.cols...))
		if err != nil {
			return nil, err
		}
		if err := Fill(t, spec.n, seed+int64(si), spec.gens); err != nil {
			return nil, err
		}
	}
	return db, nil
}
