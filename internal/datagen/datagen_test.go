package datagen_test

import (
	"math"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
)

func TestScaleRows(t *testing.T) {
	full := datagen.ScaleRows(1)
	if full.Product != 30000 || full.Division != 5000 || full.Order != 50000 ||
		full.Customer != 20000 || full.Part != 80000 {
		t.Errorf("full scale = %+v", full)
	}
	tiny := datagen.ScaleRows(0.0000001)
	if tiny.Product < 1 || tiny.Division < 1 {
		t.Errorf("tiny scale produced empty relations: %+v", tiny)
	}
}

func TestPaperDBDeterministic(t *testing.T) {
	a, err := datagen.PaperDB(10, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := datagen.PaperDB(10, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Table("Order")
	tb, _ := b.Table("Order")
	if ta.NumRows() != tb.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", ta.NumRows(), tb.NumRows())
	}
	for i := 0; i < ta.NumRows(); i++ {
		if ta.Row(i).Key() != tb.Row(i).Key() {
			t.Fatalf("row %d differs between same-seed runs", i)
		}
	}
	c, err := datagen.PaperDB(10, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := c.Table("Order")
	same := true
	for i := 0; i < ta.NumRows() && i < tc.NumRows(); i++ {
		if ta.Row(i).Key() != tc.Row(i).Key() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestPaperDBSelectivities(t *testing.T) {
	db, err := datagen.PaperDB(10, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	ord, _ := db.Table("Order")
	over100 := 0
	for i := 0; i < ord.NumRows(); i++ {
		q, _ := ord.Row(i).ColumnValue(algebra.Ref("Order", "quantity"))
		if q.Int > 100 {
			over100++
		}
	}
	frac := float64(over100) / float64(ord.NumRows())
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("s(quantity>100) = %.3f, want ≈0.5", frac)
	}

	div, _ := db.Table("Division")
	la := 0
	for i := 0; i < div.NumRows(); i++ {
		c, _ := div.Row(i).ColumnValue(algebra.Ref("Division", "city"))
		if c.Str == "LA" {
			la++
		}
	}
	laFrac := float64(la) / float64(div.NumRows())
	if math.Abs(laFrac-0.02) > 0.02 {
		t.Errorf("s(city=LA) = %.3f, want ≈0.02", laFrac)
	}
}

func TestPaperDBForeignKeysResolve(t *testing.T) {
	db, err := datagen.PaperDB(10, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	pd, _ := db.Table("Product")
	div, _ := db.Table("Division")
	for i := 0; i < pd.NumRows(); i++ {
		did, _ := pd.Row(i).ColumnValue(algebra.Ref("Product", "Did"))
		if did.Int < 0 || did.Int >= int64(div.NumRows()) {
			t.Fatalf("Product row %d has dangling Did %d", i, did.Int)
		}
	}
}

func TestFillValidatesGeneratorCount(t *testing.T) {
	tb := engine.NewTable("R", algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "a", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "b", Type: algebra.TypeInt},
	), 10)
	err := datagen.Fill(tb, 5, 1, []datagen.Gen{datagen.Sequence(0)})
	if err == nil {
		t.Error("generator/column mismatch accepted")
	}
}

func TestGenerators(t *testing.T) {
	tb := engine.NewTable("R", algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "seq", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "rng", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "fk", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "choice", Type: algebra.TypeString},
		algebra.Column{Relation: "R", Name: "label", Type: algebra.TypeString},
		algebra.Column{Relation: "R", Name: "date", Type: algebra.TypeDate},
	), 10)
	err := datagen.Fill(tb, 100, 5, []datagen.Gen{
		datagen.Sequence(10),
		datagen.IntRange(5, 7),
		datagen.ForeignKey(3),
		datagen.Choice("a", "b"),
		datagen.Label("row-"),
		datagen.DateRange(100, 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumRows(); i++ {
		row := tb.Row(i)
		seq, _ := row.ColumnValue(algebra.Ref("R", "seq"))
		if seq.Int != int64(10+i) {
			t.Fatalf("seq[%d] = %d", i, seq.Int)
		}
		rng, _ := row.ColumnValue(algebra.Ref("R", "rng"))
		if rng.Int < 5 || rng.Int > 7 {
			t.Fatalf("rng out of range: %d", rng.Int)
		}
		fk, _ := row.ColumnValue(algebra.Ref("R", "fk"))
		if fk.Int < 0 || fk.Int > 2 {
			t.Fatalf("fk out of range: %d", fk.Int)
		}
		ch, _ := row.ColumnValue(algebra.Ref("R", "choice"))
		if ch.Str != "a" && ch.Str != "b" {
			t.Fatalf("choice = %q", ch.Str)
		}
		d, _ := row.ColumnValue(algebra.Ref("R", "date"))
		if d.Int < 100 || d.Int > 200 {
			t.Fatalf("date out of range: %d", d.Int)
		}
	}
}
