// Package workload generates synthetic star-schema catalogs and SPJ query
// workloads for scaling the evaluation beyond the paper's four-query
// example (the paper's future work calls for "simulating various
// environments with different view mixes"). Generation is seeded and
// deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// StarSpec describes a star schema: one fact table referencing Dims
// dimension tables.
type StarSpec struct {
	// Dims is the number of dimension tables (≥ 1).
	Dims int
	// FactRows and DimRows are the relation cardinalities.
	FactRows, DimRows float64
	// RowsPerBlock is the blocking factor used to derive block counts.
	RowsPerBlock float64
	// AttrNDV is the distinct-value count of each dimension's filterable
	// attribute.
	AttrNDV float64
	// FactUpdateFreq and DimUpdateFreq are the fu values.
	FactUpdateFreq, DimUpdateFreq float64
}

// DefaultStar returns a medium-size star schema specification.
func DefaultStar(dims int) StarSpec {
	return StarSpec{
		Dims:           dims,
		FactRows:       100000,
		DimRows:        5000,
		RowsPerBlock:   10,
		AttrNDV:        50,
		FactUpdateFreq: 1,
		DimUpdateFreq:  0.1,
	}
}

// DimName returns the i-th dimension's relation name.
func DimName(i int) string { return fmt.Sprintf("Dim%02d", i) }

// FactName is the fact table's relation name.
const FactName = "Fact"

// Star builds the catalog for a star schema.
func Star(spec StarSpec) (*catalog.Catalog, error) {
	if spec.Dims < 1 {
		return nil, fmt.Errorf("workload: star schema needs at least one dimension")
	}
	if spec.RowsPerBlock <= 0 {
		return nil, fmt.Errorf("workload: RowsPerBlock must be positive")
	}
	cat := catalog.New()

	factCols := make([]algebra.Column, 0, spec.Dims+2)
	factAttrs := make(map[string]catalog.AttrStats, spec.Dims+2)
	factCols = append(factCols, algebra.Column{Relation: FactName, Name: "id", Type: algebra.TypeInt})
	factAttrs["id"] = catalog.AttrStats{DistinctValues: spec.FactRows}
	for i := 0; i < spec.Dims; i++ {
		fk := fmt.Sprintf("fk%02d", i)
		factCols = append(factCols, algebra.Column{Relation: FactName, Name: fk, Type: algebra.TypeInt})
		factAttrs[fk] = catalog.AttrStats{DistinctValues: spec.DimRows}
	}
	factCols = append(factCols, algebra.Column{Relation: FactName, Name: "measure", Type: algebra.TypeInt})
	factAttrs["measure"] = catalog.AttrStats{
		DistinctValues: 1000,
		Min:            algebra.IntVal(0),
		Max:            algebra.IntVal(1000),
	}
	err := cat.AddRelation(&catalog.Relation{
		Name:            FactName,
		Schema:          algebra.NewSchema(factCols...),
		Rows:            spec.FactRows,
		Blocks:          math.Ceil(spec.FactRows / spec.RowsPerBlock),
		UpdateFrequency: spec.FactUpdateFreq,
		Attrs:           factAttrs,
	})
	if err != nil {
		return nil, err
	}

	for i := 0; i < spec.Dims; i++ {
		name := DimName(i)
		err := cat.AddRelation(&catalog.Relation{
			Name: name,
			Schema: algebra.NewSchema(
				algebra.Column{Relation: name, Name: "id", Type: algebra.TypeInt},
				algebra.Column{Relation: name, Name: "attr", Type: algebra.TypeString},
				algebra.Column{Relation: name, Name: "name", Type: algebra.TypeString},
			),
			Rows:            spec.DimRows,
			Blocks:          math.Ceil(spec.DimRows / spec.RowsPerBlock),
			UpdateFrequency: spec.DimUpdateFreq,
			Attrs: map[string]catalog.AttrStats{
				"id":   {DistinctValues: spec.DimRows},
				"attr": {DistinctValues: spec.AttrNDV},
				"name": {DistinctValues: spec.DimRows},
			},
		})
		if err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// QuerySpec tunes random query generation.
type QuerySpec struct {
	// MinDims and MaxDims bound how many dimensions each query joins.
	MinDims, MaxDims int
	// FilterProb is the probability a joined dimension gets an equality
	// filter on its attr column.
	FilterProb float64
	// AttrValues is the pool size filters draw from (matching AttrNDV makes
	// estimated selectivities exact).
	AttrValues int
	// AggregateProb is the probability a query is a summary query (GROUP BY
	// the first joined dimension's attr with SUM(measure) and COUNT(*))
	// instead of a detail query.
	AggregateProb float64
}

// DefaultQueries returns the standard generation parameters.
func DefaultQueries(spec StarSpec) QuerySpec {
	max := spec.Dims
	if max > 4 {
		max = 4
	}
	return QuerySpec{MinDims: 1, MaxDims: max, FilterProb: 0.6, AttrValues: int(spec.AttrNDV)}
}

// Queries generates n bound star-join queries. Queries share dimension
// subsets and filter values by construction, so common subexpressions
// arise naturally (the situation the MVPP framework exists for).
func Queries(cat *catalog.Catalog, star StarSpec, qs QuerySpec, n int, seed int64) ([]*sqlparse.Query, error) {
	if qs.MinDims < 1 || qs.MaxDims < qs.MinDims || qs.MaxDims > star.Dims {
		return nil, fmt.Errorf("workload: bad dimension bounds [%d,%d] for %d dims", qs.MinDims, qs.MaxDims, star.Dims)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]*sqlparse.Query, 0, n)
	for qi := 0; qi < n; qi++ {
		nd := qs.MinDims + r.Intn(qs.MaxDims-qs.MinDims+1)
		perm := r.Perm(star.Dims)[:nd]

		q := &sqlparse.Query{
			Name:      fmt.Sprintf("W%03d", qi+1),
			Relations: []string{FactName},
			Output: []algebra.ColumnRef{
				algebra.Ref(FactName, "measure"),
			},
		}
		for _, d := range perm {
			dim := DimName(d)
			q.Relations = append(q.Relations, dim)
			q.JoinConds = append(q.JoinConds, algebra.JoinCond{
				Left:  algebra.Ref(FactName, fmt.Sprintf("fk%02d", d)),
				Right: algebra.Ref(dim, "id"),
			})
			q.Output = append(q.Output, algebra.Ref(dim, "name"))
			if r.Float64() < qs.FilterProb {
				val := fmt.Sprintf("v%03d", r.Intn(qs.AttrValues))
				q.Selections = append(q.Selections, algebra.Eq(algebra.Ref(dim, "attr"), algebra.StringVal(val)))
			}
		}
		if r.Float64() < qs.AggregateProb {
			// Summary query: group by the first dimension's attr.
			q.Output = nil
			q.GroupBy = []algebra.ColumnRef{algebra.Ref(DimName(perm[0]), "attr")}
			q.Aggregates = []algebra.Aggregation{
				{Func: algebra.AggSum, Arg: algebra.Ref(FactName, "measure"), Alias: "total"},
				{Func: algebra.AggCount, Alias: "n"},
			}
		}
		out = append(out, q)
	}
	return out, nil
}

// ZipfFrequencies assigns Zipf-distributed access frequencies to n queries:
// frequency of rank k is scale/k^s. The first queries are the hot ones.
func ZipfFrequencies(n int, s, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = scale / math.Pow(float64(i+1), s)
	}
	return out
}
