package workload_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/workload"
)

func TestStarCatalog(t *testing.T) {
	spec := workload.DefaultStar(4)
	cat, err := workload.Star(spec)
	if err != nil {
		t.Fatal(err)
	}
	rels := cat.Relations()
	if len(rels) != 5 {
		t.Fatalf("relations = %v", rels)
	}
	fact, err := cat.Relation(workload.FactName)
	if err != nil {
		t.Fatal(err)
	}
	if fact.Schema.Len() != 6 { // id + 4 fks + measure
		t.Errorf("fact width = %d", fact.Schema.Len())
	}
	if fact.Blocks != 10000 {
		t.Errorf("fact blocks = %v", fact.Blocks)
	}
	if got := cat.UpdateFrequency(workload.DimName(0)); got != 0.1 {
		t.Errorf("dim fu = %v", got)
	}
}

func TestStarValidation(t *testing.T) {
	if _, err := workload.Star(workload.StarSpec{Dims: 0, RowsPerBlock: 10}); err == nil {
		t.Error("zero dimensions accepted")
	}
	bad := workload.DefaultStar(2)
	bad.RowsPerBlock = 0
	if _, err := workload.Star(bad); err == nil {
		t.Error("zero blocking factor accepted")
	}
}

func TestQueriesDeterministicAndBound(t *testing.T) {
	spec := workload.DefaultStar(6)
	cat, err := workload.Star(spec)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.DefaultQueries(spec)
	a, err := workload.Queries(cat, spec, qs, 20, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Queries(cat, spec, qs, 20, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 20 {
		t.Fatalf("generated %d queries", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Relations) != len(b[i].Relations) {
			t.Fatalf("query %d not deterministic", i)
		}
		nd := len(a[i].Relations) - 1
		if nd < qs.MinDims || nd > qs.MaxDims {
			t.Errorf("query %s joins %d dims outside [%d,%d]", a[i].Name, nd, qs.MinDims, qs.MaxDims)
		}
		if len(a[i].JoinConds) != nd {
			t.Errorf("query %s has %d join conds for %d dims", a[i].Name, len(a[i].JoinConds), nd)
		}
	}
}

func TestQueriesValidation(t *testing.T) {
	spec := workload.DefaultStar(2)
	cat, err := workload.Star(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Queries(cat, spec, workload.QuerySpec{MinDims: 0, MaxDims: 2}, 5, 1); err == nil {
		t.Error("MinDims=0 accepted")
	}
	if _, err := workload.Queries(cat, spec, workload.QuerySpec{MinDims: 1, MaxDims: 5}, 5, 1); err == nil {
		t.Error("MaxDims beyond schema accepted")
	}
}

func TestQueriesWithAggregates(t *testing.T) {
	spec := workload.DefaultStar(4)
	cat, err := workload.Star(spec)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.DefaultQueries(spec)
	qs.AggregateProb = 1 // every query is a summary
	queries, err := workload.Queries(cat, spec, qs, 10, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if !q.IsAggregate() {
			t.Errorf("%s: not an aggregate query", q.Name)
		}
		if len(q.GroupBy) != 1 || len(q.Aggregates) != 2 {
			t.Errorf("%s: group=%v aggs=%v", q.Name, q.GroupBy, q.Aggregates)
		}
		if q.Output != nil {
			t.Errorf("%s: aggregate query has Output %v", q.Name, q.Output)
		}
	}
	// The generated aggregate queries flow through the optimizer.
	est := cost.NewEstimator(cat, cost.DefaultOptions())
	opt := optimizer.New(est, &cost.PaperModel{}, optimizer.Options{})
	for _, q := range queries {
		if _, _, err := opt.Optimize(q); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
}

func TestZipfFrequencies(t *testing.T) {
	f := workload.ZipfFrequencies(5, 1, 10)
	if f[0] != 10 {
		t.Errorf("f[0] = %v", f[0])
	}
	for i := 1; i < len(f); i++ {
		if f[i] >= f[i-1] {
			t.Errorf("frequencies not decreasing at %d: %v", i, f)
		}
	}
	if f[4] != 2 { // 10/5
		t.Errorf("f[4] = %v", f[4])
	}
}

// TestWorkloadEndToEnd: generated workloads flow through the whole design
// pipeline — optimize, generate MVPPs, select views — without error, and
// the design beats the all-virtual baseline whenever it materializes
// anything.
func TestWorkloadEndToEnd(t *testing.T) {
	spec := workload.DefaultStar(5)
	cat, err := workload.Star(spec)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.Queries(cat, spec, workload.DefaultQueries(spec), 8, 2026)
	if err != nil {
		t.Fatal(err)
	}
	freqs := workload.ZipfFrequencies(len(queries), 1, 20)

	est := cost.NewEstimator(cat, cost.DefaultOptions())
	model := &cost.PaperModel{}
	opt := optimizer.New(est, model, optimizer.Options{})

	plans := make([]core.QueryPlan, len(queries))
	for i, q := range queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		plans[i] = core.QueryPlan{Name: q.Name, Freq: freqs[i], Plan: p}
	}
	cands, err := core.Generate(est, model, plans, core.GenOptions{MaxRotations: 3})
	if err != nil {
		t.Fatal(err)
	}
	best := core.Best(cands)
	if best == nil {
		t.Fatal("no candidate")
	}
	virtual := best.MVPP.AllVirtual(model)
	if len(best.Selection.Materialized) > 0 && best.Selection.Costs.Total > virtual.Total {
		t.Errorf("design %v worse than all-virtual %v", best.Selection.Costs.Total, virtual.Total)
	}
}
