package cli

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/obs"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":      slog.LevelInfo,
		"info":  slog.LevelInfo,
		"DEBUG": slog.LevelDebug,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestSetupOff(t *testing.T) {
	o, err := Setup("", "", "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Observer != nil {
		t.Error("no flags should leave the observer nil (instrumentation off)")
	}
	if err := o.Close(); err != nil {
		t.Errorf("Close with no trace file: %v", err)
	}
}

func TestSetupRejectsBadLevel(t *testing.T) {
	if _, err := Setup("loud", "", "", io.Discard); err == nil {
		t.Fatal("Setup accepted an unknown log level")
	}
}

func TestSetupLogAndTrace(t *testing.T) {
	var logbuf bytes.Buffer
	path := filepath.Join(t.TempDir(), "trace.json")
	o, err := Setup("debug", path, "", &logbuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.Observer == nil || o.Logger == nil {
		t.Fatal("log+trace setup left observer or logger nil")
	}
	sp := o.Observer.StartSpan("design", obs.Int("queries", 1))
	sp.Event(obs.EvCosts, obs.Float("total", 7))
	sp.End()
	obs.CounterOf(o.Observer, obs.CtrCandidates).Inc()
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(logbuf.String(), "span=design") {
		t.Errorf("log backend missed the span:\n%s", logbuf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := obs.ParseTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FindSpan("design") == nil {
		t.Error("trace file missed the span")
	}
	if len(tr.EventsOfKind(obs.EvCosts)) != 1 {
		t.Error("trace file missed the event")
	}
	if tr.Counters[obs.CtrCandidates] != 1 {
		t.Errorf("trace file counters = %v", tr.Counters)
	}
}

func TestSetupPprofOnlyStillCounts(t *testing.T) {
	o, err := Setup("", "", "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Observer == nil {
		t.Fatal("-pprof alone must still wire a metrics-carrying observer")
	}
	obs.CounterOf(o.Observer, obs.CtrCandidates).Inc()
	if got := o.Observer.Metrics().Counter(obs.CtrCandidates).Value(); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

func TestServeProfiling(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.CtrCandidates).Add(9)
	addr, err := ServeProfiling("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		MVPP struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"mvpp"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.MVPP.Counters[obs.CtrCandidates] != 9 {
		t.Errorf("/debug/vars counters = %v", vars.MVPP.Counters)
	}

	// A second Setup-style call must swap the registry, not panic on a
	// duplicate expvar registration.
	reg2 := obs.NewRegistry()
	reg2.Counter(obs.CtrCandidates).Add(3)
	if _, err := ServeProfiling("127.0.0.1:0", reg2); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.MVPP.Counters[obs.CtrCandidates] != 3 {
		t.Errorf("swapped registry counters = %v", vars.MVPP.Counters)
	}
}
