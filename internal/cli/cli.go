// Package cli holds the setup shared by the repository's commands and
// examples: the slog configuration behind every -log-level flag, the
// observability bundle wiring -log-level / -trace-out / -pprof into one
// Observer, and the profiling endpoint (net/http/pprof + expvar).
package cli

import (
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
	"sync"

	"github.com/warehousekit/mvpp/internal/obs"
)

// ParseLevel maps a -log-level flag value to a slog.Level. The empty
// string means Info; unknown values are an error.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err == nil {
		return l, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger is the shared slog setup: a text handler on w at the level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// DefaultLogger is the examples' shared slog setup: an Info-level text
// handler on stderr.
func DefaultLogger() *slog.Logger {
	return NewLogger(os.Stderr, slog.LevelInfo)
}

// Fatal logs the error at Error level and exits with status 1. It is the
// examples' replacement for log.Fatal.
func Fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, slog.Any("err", err))
	os.Exit(1)
}

// Observability is the observer a command wires from its -log-level,
// -trace-out, and -pprof flags. Observer is nil — instrumentation fully
// off — when no flag asked for a backend.
type Observability struct {
	// Observer goes into Options.Observer (or the internal Obs fields).
	Observer obs.Observer
	// Logger is non-nil when -log-level was given.
	Logger *slog.Logger

	rec       *obs.Recorder
	tracePath string
}

// Setup builds the observability bundle. logLevel selects slog-backed
// span/event logging onto logw ("" = off); traceOut names the JSON trace
// file to write on Close ("" = off); pprofAddr starts the profiling
// endpoint ("" = off). All backends share one metrics registry.
func Setup(logLevel, traceOut, pprofAddr string, logw io.Writer) (*Observability, error) {
	o := &Observability{}
	reg := obs.NewRegistry()
	var backends []obs.Observer
	if logLevel != "" {
		level, err := ParseLevel(logLevel)
		if err != nil {
			return nil, err
		}
		o.Logger = NewLogger(logw, level)
		backends = append(backends, obs.NewLogObserver(o.Logger, reg))
	}
	if traceOut != "" {
		o.rec = obs.NewRecorder(reg)
		o.tracePath = traceOut
		backends = append(backends, o.rec)
	}
	if pprofAddr != "" {
		if _, err := ServeProfiling(pprofAddr, reg); err != nil {
			return nil, err
		}
		// With -pprof alone there is no log or trace backend, but the
		// /debug/vars export still needs the pipeline to fill the registry.
		if len(backends) == 0 {
			backends = append(backends, obs.MetricsOnly(reg))
		}
	}
	o.Observer = obs.Tee(backends...)
	return o, nil
}

// Close writes the JSON trace if -trace-out asked for one.
func (o *Observability) Close() error {
	if o == nil || o.rec == nil {
		return nil
	}
	f, err := os.Create(o.tracePath)
	if err != nil {
		return err
	}
	werr := o.rec.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// profiled points the expvar-published metrics at the most recent
// registry; the expvar variable itself can only be registered once per
// process.
var profiled struct {
	sync.Mutex
	reg  *obs.Registry
	once sync.Once
}

// ServeProfiling starts an HTTP server on addr exposing /debug/pprof
// (net/http/pprof) and /debug/vars (expvar, including the registry's
// counters and gauges under "mvpp"). It returns the bound address, which
// differs from addr when addr asked for port 0.
func ServeProfiling(addr string, reg *obs.Registry) (string, error) {
	profiled.Lock()
	profiled.reg = reg
	profiled.Unlock()
	profiled.once.Do(func() {
		expvar.Publish("mvpp", expvar.Func(func() any {
			profiled.Lock()
			r := profiled.reg
			profiled.Unlock()
			if r == nil {
				return nil
			}
			counters, gauges := r.Snapshot()
			return map[string]any{"counters": counters, "gauges": gauges}
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cli: pprof listener: %w", err)
	}
	go func() {
		// http.DefaultServeMux carries the pprof and expvar handlers.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
