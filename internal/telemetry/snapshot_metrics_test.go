package telemetry

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/serve"
	"github.com/warehousekit/mvpp/internal/snapshot"
)

// snapshotFixture is fixture() with a durable snapshot store and journal
// wired in, booted through snapshot recovery so the recovery block is set.
func snapshotFixture(t *testing.T) (*serve.Server, *Server) {
	t.Helper()
	db, err := datagen.PaperDB(10, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	div, err := db.Table("Division")
	if err != nil {
		t.Fatal(err)
	}
	join := algebra.NewJoin(algebra.NewScan("Product", pd.Schema),
		algebra.NewSelect(algebra.NewScan("Division", div.Schema),
			algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))),
		[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}})
	if _, err := db.Materialize("tmp2", join); err != nil {
		t.Fatal(err)
	}
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Config{
		DB:        db,
		Queries:   []serve.QuerySpec{{Name: "QLA", Plan: join, Frequency: 10}},
		Views:     []serve.ViewSpec{{Name: "tmp2", Strategy: core.MaintIncremental}},
		Snapshots: st,
		Journal:   engine.NewMemJournal(),
		Recovery: &snapshot.RecoveryStats{
			Cold: true, ViewsRecomputed: 1,
		},
		DeltaBatch: 1 << 20,
		Obs:        obs.MetricsOnly(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts, err := Serve(Config{Addr: "127.0.0.1:0", Registry: reg, Source: srv})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return srv, ts
}

// TestSnapshotMetricsExposition: with a snapshot store wired, /metrics
// stays valid exposition and carries the mv_snapshot_* and mv_recovery_*
// families, including the per-view segment age.
func TestSnapshotMetricsExposition(t *testing.T) {
	srv, ts := snapshotFixture(t)
	if err := srv.Ingest("Division", []algebra.Value{
		algebra.IntVal(900001), algebra.StringVal("division-Δ"), algebra.StringVal("LA"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if _, err := ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE mv_snapshot_generation gauge",
		"mv_snapshot_generation 1",
		"mv_snapshot_bytes ",
		"mv_snapshot_checkpoints 1",
		"mv_snapshot_last_checkpoint_age_seconds",
		"mv_snapshot_age_seconds{view=\"tmp2\"}",
		"mv_snapshot_view_bytes{view=\"tmp2\"}",
		"mv_recovery_cold 1",
		"mv_recovery_views_recomputed 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /views carries the snapshots block with the same story.
	code, body = get(t, ts.Addr(), "/views")
	if code != http.StatusOK {
		t.Fatalf("/views status %d", code)
	}
	var out struct {
		Snapshots *struct {
			Generation  uint64 `json:"generation"`
			Checkpoints int64  `json:"checkpoints"`
			Views       map[string]struct {
				Bytes int64 `json:"bytes"`
			} `json:"views"`
			Recovery *struct {
				Cold bool `json:"cold"`
			} `json:"recovery"`
		} `json:"snapshots"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Snapshots == nil {
		t.Fatalf("/views missing snapshots block: %s", body)
	}
	if out.Snapshots.Generation != 1 || out.Snapshots.Checkpoints != 1 {
		t.Errorf("snapshots block = %+v", out.Snapshots)
	}
	if v, ok := out.Snapshots.Views["tmp2"]; !ok || v.Bytes <= 0 {
		t.Errorf("per-view snapshot info = %+v", out.Snapshots.Views)
	}
	if out.Snapshots.Recovery == nil || !out.Snapshots.Recovery.Cold {
		t.Errorf("recovery block = %+v", out.Snapshots.Recovery)
	}
}

// TestMetricsWithoutSnapshots: a snapshotless server must not emit the
// mv_snapshot_* families at all.
func TestMetricsWithoutSnapshots(t *testing.T) {
	_, ts, _ := fixture(t)
	_, body := get(t, ts.Addr(), "/metrics")
	if strings.Contains(string(body), "mv_snapshot_") {
		t.Error("/metrics emits mv_snapshot_* without a snapshot store")
	}
	_, body = get(t, ts.Addr(), "/views")
	if strings.Contains(string(body), "\"snapshots\"") {
		t.Error("/views emits a snapshots block without a snapshot store")
	}
}
