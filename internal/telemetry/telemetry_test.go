package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/serve"
)

// fixture builds a small serving layer over the paper's relations (tmp2
// incremental, custla recompute) with metrics and trace sampling on, plus a
// telemetry plane bound to a free port.
func fixture(t *testing.T) (*serve.Server, *Server, *obs.Registry) {
	t.Helper()
	db, err := datagen.PaperDB(10, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	div, err := db.Table("Division")
	if err != nil {
		t.Fatal(err)
	}
	join := algebra.NewJoin(algebra.NewScan("Product", pd.Schema),
		algebra.NewSelect(algebra.NewScan("Division", div.Schema),
			algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))),
		[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}})
	if _, err := db.Materialize("tmp2", join); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Config{
		DB:               db,
		Queries:          []serve.QuerySpec{{Name: "QLA", Plan: join, Frequency: 10}},
		Views:            []serve.ViewSpec{{Name: "tmp2", Strategy: core.MaintIncremental}},
		DeltaBatch:       1 << 20,
		TraceSampleEvery: 1,
		Obs:              obs.MetricsOnly(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts, err := Serve(Config{Addr: "127.0.0.1:0", Registry: reg, Source: srv})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return srv, ts, reg
}

func get(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestMetricsExposition: after traffic and a maintenance epoch, /metrics is
// valid exposition and carries the counter, histogram and per-view
// staleness families the acceptance criteria name.
func TestMetricsExposition(t *testing.T) {
	srv, ts, _ := fixture(t)
	for i := 0; i < 5; i++ {
		if _, err := srv.Query(nil, "QLA"); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Ingest("Division", []algebra.Value{
		algebra.IntVal(900001), algebra.StringVal("division-Δ"), algebra.StringVal("LA"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	samples, err := ValidateExposition(body)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	if samples < 10 {
		t.Errorf("only %d samples", samples)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE mvpp_serve_queries_total counter",
		"# TYPE mvpp_serve_latency_seconds histogram",
		"mvpp_serve_latency_seconds_bucket{le=\"+Inf\"} 5",
		"mvpp_serve_latency_seconds_count 5",
		"mvpp_view_lag_rows{view=\"tmp2\"}",
		"mvpp_view_pending_rows{view=\"tmp2\"}",
		"mvpp_serve_window_qps",
		"mvpp_serve_epoch 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHealthzAndViews: a live server reports ok with its epoch; /views
// carries strategy and breaker state per maintained view.
func TestHealthzAndViews(t *testing.T) {
	srv, ts, _ := fixture(t)
	code, body := get(t, ts.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var health struct {
		Status string `json:"status"`
		Views  int    `json:"views"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Views != 1 {
		t.Errorf("healthz = %+v, want ok with 1 view", health)
	}

	code, body = get(t, ts.Addr(), "/views")
	if code != http.StatusOK {
		t.Fatalf("/views status %d", code)
	}
	var views struct {
		Views map[string]struct {
			Strategy string `json:"strategy"`
			Breaker  string `json:"breaker"`
		} `json:"views"`
	}
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	v, ok := views.Views["tmp2"]
	if !ok {
		t.Fatalf("/views missing tmp2: %s", body)
	}
	if v.Strategy != "incremental" || v.Breaker != "closed" {
		t.Errorf("tmp2 = %+v, want incremental/closed", v)
	}
	_ = srv
}

// TestTracesCorrelation: with every query sampled, /traces returns one
// query's full lifecycle — admission through execution to reply — under a
// single query ID.
func TestTracesCorrelation(t *testing.T) {
	srv, ts, _ := fixture(t)
	if _, err := srv.Query(nil, "QLA"); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.Addr(), "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var out struct {
		Sampled int                `json:"sampled"`
		Traces  []serve.QueryTrace `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sampled != 1 {
		t.Fatalf("sampled = %d, want 1: %s", out.Sampled, body)
	}
	tr := out.Traces[0]
	if tr.ID == 0 || tr.Query != "QLA" || !tr.Done {
		t.Errorf("trace header = %+v, want done QLA with nonzero ID", tr)
	}
	var stages []string
	for _, st := range tr.Stages {
		stages = append(stages, st.Stage)
	}
	want := []string{"admit", "cache_miss", "execute", "reply"}
	if got := strings.Join(stages, ","); got != strings.Join(want, ",") {
		t.Errorf("stages = %s, want %s", got, strings.Join(want, ","))
	}
}

// TestHealthzClosed: once the serving layer closes, /healthz answers 503
// "closed" instead of hanging, and the telemetry Close is idempotent.
func TestHealthzClosed(t *testing.T) {
	srv, ts, _ := fixture(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.Addr(), "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after close: status %d, want 503", code)
	}
	if !strings.Contains(string(body), `"closed"`) {
		t.Errorf("/healthz after close = %s, want closed", body)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := http.Get("http://" + ts.Addr() + "/healthz"); err == nil {
		t.Error("listener still answering after Close")
	}
}

// TestValidateExposition rejects the malformed and accepts the valid.
func TestValidateExposition(t *testing.T) {
	good := "# TYPE mvpp_x_total counter\nmvpp_x_total 3\nmvpp_h_bucket{le=\"+Inf\"} 2\n"
	if n, err := ValidateExposition([]byte(good)); err != nil || n != 2 {
		t.Errorf("good exposition: n=%d err=%v", n, err)
	}
	for _, bad := range []string{
		"",               // no samples
		"mvpp_x three\n", // non-numeric value
		"9metric 1\n",    // illegal name
		"# TYPE mvpp_x counter gauge\n" + "mvpp_x 1\n", // malformed TYPE
	} {
		if _, err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("accepted malformed exposition %q", bad)
		}
	}
}

// TestMetricName maps registry names onto legal Prometheus names.
func TestMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.queries":   "mvpp_serve_queries",
		"optimizer.plans": "mvpp_optimizer_plans",
		"weird-name/x":    "mvpp_weird_name_x",
		"already_under":   "mvpp_already_under",
	} {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestServeNilSource: a telemetry plane with no source still scrapes (the
// registry families plus the always-on runtime families) and reports ok
// health.
func TestServeNilSource(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo.count").Add(7)
	ts, err := Serve(Config{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	code, body := get(t, ts.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if n, err := ValidateExposition(body); err != nil || n < 2 {
		t.Errorf("nil-source metrics: n=%d err=%v\n%s", n, err, body)
	}
	for _, want := range []string{"mvpp_demo_count_total 7", "go_goroutines ", "mvpp_build_info{"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("nil-source metrics missing %q", want)
		}
	}
	code, _ = get(t, ts.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz status %d", code)
	}
}

// TestWindowedRatesMove: windowed QPS reflects recent traffic (nonzero
// right after queries).
func TestWindowedRatesMove(t *testing.T) {
	srv, ts, _ := fixture(t)
	for i := 0; i < 20; i++ {
		if _, err := srv.Query(nil, "QLA"); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.WindowQueries != 20 {
		t.Errorf("WindowQueries = %d, want 20", st.WindowQueries)
	}
	if st.WindowQPS <= 0 {
		t.Errorf("WindowQPS = %g, want > 0", st.WindowQPS)
	}
	if st.WindowCacheHits != 19 {
		t.Errorf("WindowCacheHits = %d, want 19", st.WindowCacheHits)
	}
	if st.WindowHitRate < 0.9 {
		t.Errorf("WindowHitRate = %g, want ~0.95", st.WindowHitRate)
	}
	if st.WindowP99 <= 0 {
		t.Errorf("WindowP99 = %v, want > 0", st.WindowP99)
	}
	_, body := get(t, ts.Addr(), "/metrics")
	if !strings.Contains(string(body), "mvpp_serve_window_latency_seconds_count 20") {
		t.Errorf("window histogram missing from /metrics:\n%s",
			grepLines(string(body), "window_latency"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return fmt.Sprint(strings.Join(out, "\n"))
}
