// Package telemetry is the serving layer's live operational plane: a small
// HTTP admin server that makes a running warehouse observable while it
// serves traffic, instead of only post-mortem through trace files.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition (format 0.0.4): every registry
//	               counter and gauge, windowed rates (QPS, hit rate, refresh
//	               failures/s), per-view staleness gauges, and the serve
//	               latency histograms (all-time and rolling-window) as
//	               cumulative _bucket/_sum/_count families.
//	/healthz       liveness JSON: "ok" / "degraded" while serving, "closed"
//	               (HTTP 503) once shutdown has begun.
//	/views         per-view JSON: maintenance strategy, refresh epoch,
//	               staleness (pending and lag rows), breaker state, last
//	               error.
//	/costmodel     the cost-accountability ledger as JSON: per query class
//	               and per view (recompute and incremental separately) the
//	               §4.1 predicted block cost, last/mean measured actuals,
//	               EWMA calibration ratio, sample count, and drift flag.
//	/traces        the sampled trace ring: query entries are one query's
//	               correlated lifecycle (admit → cache/execute → reply)
//	               under a single query ID; write-path entries (ingest,
//	               epoch, checkpoint) carry full causal span trees under a
//	               single trace ID.
//	/lineage       per-view refresh lineage JSON: which epochs, journal LSN
//	               ranges, and delta batches produced each view's current
//	               contents, plus the live contents' fingerprint.
//	/flight        the flight recorder's retained forensic dumps (one per
//	               latched episode: SLO breach, breaker open, checkpoint
//	               error, recovery corruption).
//	/debug/pprof/  the standard runtime profiles.
//
// The plane is strictly pull-based and opt-in: nothing here runs unless a
// listen address is configured, and a scrape only reads atomics and
// snapshots — it never blocks the serving hot path.
package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/warehousekit/mvpp/internal/costaudit"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/serve"
)

// Source is what the telemetry plane reads from the serving layer;
// *serve.Server implements it. Every method must be cheap and safe to call
// from scrape handlers while the server runs (or closes) concurrently.
type Source interface {
	Stats() serve.Stats
	Staleness() map[string]serve.Staleness
	Epoch() uint64
	LatencySnapshot() obs.HistSnapshot
	WindowLatencySnapshot() obs.HistSnapshot
	RecentTraces() []serve.QueryTrace
	CostReport() costaudit.Report
	IsClosed() bool
}

// SnapshotSource is the optional extension a Source implements when the
// serving layer has a durable snapshot store; *serve.Server implements it.
// The telemetry plane type-asserts for it, so sources without snapshots
// (tests, fakes, snapshotless servers) need not change.
type SnapshotSource interface {
	SnapshotStats() serve.SnapshotStats
}

// LineageSource is the optional extension for /lineage and the lineage
// block on /views; *serve.Server implements it.
type LineageSource interface {
	Lineage() map[string]serve.ViewLineage
}

// FlightSource is the optional extension for /flight; *serve.Server
// implements it.
type FlightSource interface {
	FlightDumps() []obs.FlightDump
}

// ExemplarSource is the optional extension that attaches OpenMetrics
// exemplars — concrete sampled trace IDs — to the latency histogram's
// bucket lines; *serve.Server implements it.
type ExemplarSource interface {
	LatencyExemplars() []serve.LatencyExemplar
}

// Config assembles a telemetry server.
type Config struct {
	// Addr is the listen address (":9090", "127.0.0.1:0", ...).
	Addr string
	// Registry supplies the counters and gauges for /metrics (nil: only the
	// Source-derived families are exposed).
	Registry *obs.Registry
	// Source supplies serving stats, view staleness and traces (nil: those
	// families and endpoints report empty).
	Source Source
}

// Server is a running telemetry plane. Create with Serve, stop with Close.
type Server struct {
	ln        net.Listener
	srv       *http.Server
	reg       *obs.Registry
	src       Source
	closeOnce sync.Once
	closeErr  error
}

// Serve binds the address and starts answering scrapes in a background
// goroutine. It returns once the listener is bound, so Addr is immediately
// scrapable (":0" picks a free port).
func Serve(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		return nil, errors.New("telemetry: no listen address")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{ln: ln, reg: cfg.Registry, src: cfg.Source}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/costmodel", s.handleCostModel)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/lineage", s.handleLineage)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else would
		// have surfaced at Listen time.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port when the
// config asked for ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight scrape handlers. Idempotent and
// safe to call concurrently; subsequent calls return the first error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.srv.Close()
	})
	return s.closeErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, s.reg, s.src)
}

// healthReply is the /healthz body.
type healthReply struct {
	Status        string  `json:"status"`
	Epoch         uint64  `json:"epoch"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Views         int     `json:"views"`
	Degrading     int     `json:"degrading"`
	WindowQPS     float64 `json:"window_qps"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	reply := healthReply{Status: "ok"}
	if s.src == nil {
		writeJSON(w, http.StatusOK, reply)
		return
	}
	if s.src.IsClosed() {
		reply.Status = "closed"
		writeJSON(w, http.StatusServiceUnavailable, reply)
		return
	}
	st := s.src.Stats()
	reply.Epoch = s.src.Epoch()
	reply.UptimeSeconds = st.Uptime.Seconds()
	reply.WindowQPS = st.WindowQPS
	for _, v := range s.src.Staleness() {
		reply.Views++
		if v.Degrading {
			reply.Degrading++
		}
	}
	if reply.Degrading > 0 {
		reply.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, reply)
}

// viewStatus is one maintained view in the /views body.
type viewStatus struct {
	Strategy            string     `json:"strategy"`
	Policy              string     `json:"policy"`
	Status              string     `json:"status"`
	Epoch               uint64     `json:"epoch"`
	PendingRows         int        `json:"pending_rows"`
	LagRows             int        `json:"lag_rows"`
	Breaker             string     `json:"breaker"`
	ConsecutiveFailures int        `json:"consecutive_failures"`
	Degrading           bool       `json:"degrading"`
	SLOViolated         bool       `json:"slo_violated"`
	SLOViolations       int64      `json:"slo_violations,omitempty"`
	StaleEpochs         int        `json:"stale_epochs,omitempty"`
	LastError           string     `json:"last_error,omitempty"`
	LastRefresh         *time.Time `json:"last_refresh,omitempty"`
}

// snapshotBlock is the /views "snapshots" object: last checkpoint, per-view
// segment status, and the recovery that booted this server.
type snapshotBlock struct {
	Generation       uint64                 `json:"generation"`
	LastCheckpointAt *time.Time             `json:"last_checkpoint_at,omitempty"`
	LastBytes        int64                  `json:"last_bytes"`
	Checkpoints      int64                  `json:"checkpoints"`
	Skipped          int64                  `json:"skipped"`
	Failures         int64                  `json:"failures"`
	AgedOut          int64                  `json:"aged_out"`
	Recovery         *recoveryBlock         `json:"recovery,omitempty"`
	Views            map[string]viewSegment `json:"views,omitempty"`
}

type viewSegment struct {
	SnapshotAt time.Time `json:"snapshot_at"`
	AgeSeconds float64   `json:"age_seconds"`
	Bytes      int64     `json:"bytes"`
	Epoch      uint64    `json:"epoch"`
}

type recoveryBlock struct {
	Cold             bool    `json:"cold"`
	Generation       uint64  `json:"generation"`
	ViewsRestored    int     `json:"views_restored"`
	ViewsRecomputed  int     `json:"views_recomputed"`
	CorruptArtifacts int     `json:"corrupt_artifacts"`
	Bytes            int64   `json:"bytes"`
	DurationSeconds  float64 `json:"duration_seconds"`
}

// lineageSummary is the compact per-view lineage block on /views; the full
// entry history lives on /lineage.
type lineageSummary struct {
	CurrentEpoch uint64 `json:"current_epoch"`
	LSNHi        uint64 `json:"lsn_hi"`
	Fingerprint  string `json:"fingerprint,omitempty"`
	Entries      int    `json:"entries"`
}

func (s *Server) handleViews(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Epoch     uint64                    `json:"epoch"`
		Views     map[string]viewStatus     `json:"views"`
		Snapshots *snapshotBlock            `json:"snapshots,omitempty"`
		Lineage   map[string]lineageSummary `json:"lineage,omitempty"`
	}{Views: map[string]viewStatus{}}
	if s.src != nil {
		out.Epoch = s.src.Epoch()
		for name, v := range s.src.Staleness() {
			vs := viewStatus{
				Strategy:            v.Strategy,
				Policy:              v.Policy,
				Status:              v.Status,
				Epoch:               v.Epoch,
				PendingRows:         v.PendingRows,
				LagRows:             v.LagRows,
				Breaker:             v.Breaker,
				ConsecutiveFailures: v.ConsecutiveFailures,
				Degrading:           v.Degrading,
				SLOViolated:         v.SLOViolated,
				SLOViolations:       v.SLOViolations,
				StaleEpochs:         v.StaleEpochs,
				LastError:           v.LastError,
			}
			if !v.LastRefresh.IsZero() {
				t := v.LastRefresh
				vs.LastRefresh = &t
			}
			out.Views[name] = vs
		}
		if ss, ok := s.src.(SnapshotSource); ok {
			if snap := ss.SnapshotStats(); snap.Configured {
				out.Snapshots = snapshotBlockOf(snap)
			}
		}
		if ls, ok := s.src.(LineageSource); ok {
			if lin := ls.Lineage(); len(lin) > 0 {
				out.Lineage = make(map[string]lineageSummary, len(lin))
				for name, vl := range lin {
					out.Lineage[name] = lineageSummary{
						CurrentEpoch: vl.CurrentEpoch,
						LSNHi:        vl.LSNHi,
						Fingerprint:  vl.Fingerprint,
						Entries:      len(vl.Entries),
					}
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func snapshotBlockOf(snap serve.SnapshotStats) *snapshotBlock {
	blk := &snapshotBlock{
		Generation:  snap.Generation,
		LastBytes:   snap.LastBytes,
		Checkpoints: snap.Checkpoints,
		Skipped:     snap.Skipped,
		Failures:    snap.Failures,
		AgedOut:     snap.AgedOut,
	}
	if !snap.LastCheckpointAt.IsZero() {
		t := snap.LastCheckpointAt
		blk.LastCheckpointAt = &t
	}
	if len(snap.Views) > 0 {
		now := time.Now()
		blk.Views = make(map[string]viewSegment, len(snap.Views))
		for name, v := range snap.Views {
			blk.Views[name] = viewSegment{
				SnapshotAt: v.SnapshotAt,
				AgeSeconds: now.Sub(v.SnapshotAt).Seconds(),
				Bytes:      v.Bytes,
				Epoch:      v.Epoch,
			}
		}
	}
	if r := snap.Recovery; r != nil {
		blk.Recovery = &recoveryBlock{
			Cold:             r.Cold,
			Generation:       r.Generation,
			ViewsRestored:    r.ViewsRestored,
			ViewsRecomputed:  r.ViewsRecomputed,
			CorruptArtifacts: r.CorruptArtifacts,
			Bytes:            r.Bytes,
			DurationSeconds:  r.Duration.Seconds(),
		}
	}
	return blk
}

func (s *Server) handleCostModel(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Epoch uint64 `json:"epoch"`
		costaudit.Report
	}{Report: costaudit.Report{Entries: []costaudit.Entry{}}}
	if s.src != nil {
		out.Epoch = s.src.Epoch()
		out.Report = s.src.CostReport()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	var traces []serve.QueryTrace
	if s.src != nil {
		traces = s.src.RecentTraces()
	}
	if traces == nil {
		traces = []serve.QueryTrace{}
	}
	out := struct {
		Sampled int                `json:"sampled"`
		Traces  []serve.QueryTrace `json:"traces"`
	}{Sampled: len(traces), Traces: traces}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLineage(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Epoch uint64                       `json:"epoch"`
		Views map[string]serve.ViewLineage `json:"views"`
	}{Views: map[string]serve.ViewLineage{}}
	if s.src != nil {
		out.Epoch = s.src.Epoch()
		if ls, ok := s.src.(LineageSource); ok {
			out.Views = ls.Lineage()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	var dumps []obs.FlightDump
	if fs, ok := s.src.(FlightSource); ok {
		dumps = fs.FlightDumps()
	}
	if dumps == nil {
		dumps = []obs.FlightDump{}
	}
	out := struct {
		Dumps int              `json:"dumps"`
		List  []obs.FlightDump `json:"list"`
	}{Dumps: len(dumps), List: dumps}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteMetrics renders the full /metrics exposition: registry counters
// (suffixed _total) and gauges, then the serving families derived from the
// source — windowed rates, per-view staleness gauges, and the latency
// histograms. Output is sorted, so scrapes diff cleanly.
func WriteMetrics(w io.Writer, reg *obs.Registry, src Source) {
	if reg != nil {
		counters, gauges := reg.Snapshot()
		names := make([]string, 0, len(counters))
		for name := range counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := MetricName(name) + "_total"
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, counters[name])
		}
		names = names[:0]
		for name := range gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := MetricName(name)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m, m, formatFloat(gauges[name]))
		}
	}
	writeRuntimeMetrics(w)
	if src == nil {
		return
	}
	st := src.Stats()
	writeGauge(w, "mvpp_serve_epoch", float64(src.Epoch()))
	writeGauge(w, "mvpp_serve_uptime_seconds", st.Uptime.Seconds())
	writeGauge(w, "mvpp_serve_window_seconds", float64(st.WindowSeconds))
	writeGauge(w, "mvpp_serve_window_qps", st.WindowQPS)
	writeGauge(w, "mvpp_serve_window_hit_rate", st.WindowHitRate)
	writeGauge(w, "mvpp_serve_window_refresh_failures_per_second", st.WindowRefreshFailuresPerSec)

	views := src.Staleness()
	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	sort.Strings(names)
	writeViewGauge(w, "mvpp_view_pending_rows", views, names, func(v serve.Staleness) float64 { return float64(v.PendingRows) })
	writeViewGauge(w, "mvpp_view_lag_rows", views, names, func(v serve.Staleness) float64 { return float64(v.LagRows) })
	writeViewGauge(w, "mvpp_view_refresh_epoch", views, names, func(v serve.Staleness) float64 { return float64(v.Epoch) })
	writeViewGauge(w, "mvpp_view_degrading", views, names, func(v serve.Staleness) float64 {
		if v.Degrading {
			return 1
		}
		return 0
	})
	writeViewGauge(w, "mvpp_view_breaker_open", views, names, func(v serve.Staleness) float64 {
		if v.Breaker != "closed" {
			return 1
		}
		return 0
	})
	writeViewGauge(w, "mvpp_view_slo_violated", views, names, func(v serve.Staleness) float64 {
		if v.SLOViolated {
			return 1
		}
		return 0
	})
	writeViewGauge(w, "mvpp_view_slo_violations", views, names, func(v serve.Staleness) float64 { return float64(v.SLOViolations) })
	writeViewGauge(w, "mvpp_view_stale_epochs", views, names, func(v serve.Staleness) float64 { return float64(v.StaleEpochs) })

	// mv_view_status is the lifecycle state machine one-hot encoded: for
	// each view exactly one {view,status} sample is 1. Dashboards can sum
	// by status or alert on a specific view leaving VALID.
	if len(names) > 0 {
		fmt.Fprintf(w, "# TYPE mv_view_status gauge\n")
		for _, name := range names {
			for _, status := range serve.ViewStatuses {
				hot := 0
				if views[name].Status == status.String() {
					hot = 1
				}
				fmt.Fprintf(w, "mv_view_status{view=%q,status=%q} %d\n",
					escapeLabel(name), status.String(), hot)
			}
		}
	}

	// CDC streaming-ingest families: accepted→committed lag quantiles,
	// backpressure counters, and the feed's current occupancy.
	writeGauge(w, "mv_ingest_lag_p50_seconds", st.IngestLagP50.Seconds())
	writeGauge(w, "mv_ingest_lag_p95_seconds", st.IngestLagP95.Seconds())
	writeGauge(w, "mv_ingest_lag_p99_seconds", st.IngestLagP99.Seconds())
	writeGauge(w, "mv_ingest_buffer_rows", float64(st.IngestBufferedRows))
	fmt.Fprintf(w, "# TYPE mv_ingest_stream_rows_total counter\nmv_ingest_stream_rows_total %d\n", st.StreamRows)
	fmt.Fprintf(w, "# TYPE mv_ingest_group_commits_total counter\nmv_ingest_group_commits_total %d\n", st.StreamGroups)
	fmt.Fprintf(w, "# TYPE mv_ingest_backpressure_blocked_total counter\nmv_ingest_backpressure_blocked_total %d\n", st.StreamBlocked)
	fmt.Fprintf(w, "# TYPE mv_ingest_backpressure_shed_total counter\nmv_ingest_backpressure_shed_total %d\n", st.StreamShed)
	fmt.Fprintf(w, "# TYPE mv_slo_violations_total counter\nmv_slo_violations_total %d\n", st.SLOViolations)

	writeCostMetrics(w, src.CostReport())

	if ss, ok := src.(SnapshotSource); ok {
		writeSnapshotMetrics(w, ss.SnapshotStats())
	}

	var exemplars []serve.LatencyExemplar
	if es, ok := src.(ExemplarSource); ok {
		exemplars = es.LatencyExemplars()
	}
	writeHistogramExemplars(w, "mvpp_serve_latency_seconds", src.LatencySnapshot(), exemplars)
	writeHistogram(w, "mvpp_serve_window_latency_seconds", src.WindowLatencySnapshot())
}

// writeSnapshotMetrics renders the durable-snapshot families: store-wide
// gauges (generation, bytes, checkpoint counters, last-recovery stats) and
// the per-view segment ages as mv_snapshot_age_seconds{view=...}. Emitted
// only when the source actually has a snapshot store.
func writeSnapshotMetrics(w io.Writer, ss serve.SnapshotStats) {
	if !ss.Configured {
		return
	}
	now := time.Now()
	writeGauge(w, "mv_snapshot_generation", float64(ss.Generation))
	writeGauge(w, "mv_snapshot_bytes", float64(ss.LastBytes))
	writeGauge(w, "mv_snapshot_checkpoints", float64(ss.Checkpoints))
	writeGauge(w, "mv_snapshot_checkpoints_skipped", float64(ss.Skipped))
	writeGauge(w, "mv_snapshot_checkpoint_failures", float64(ss.Failures))
	writeGauge(w, "mv_snapshot_truncate_failures", float64(ss.TruncateFailures))
	writeGauge(w, "mv_snapshot_generations_aged_out", float64(ss.AgedOut))
	if !ss.LastCheckpointAt.IsZero() {
		writeGauge(w, "mv_snapshot_last_checkpoint_age_seconds", now.Sub(ss.LastCheckpointAt).Seconds())
	}
	if len(ss.Views) > 0 {
		names := make([]string, 0, len(ss.Views))
		for name := range ss.Views {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# TYPE mv_snapshot_age_seconds gauge\n")
		for _, name := range names {
			fmt.Fprintf(w, "mv_snapshot_age_seconds{view=%q} %s\n",
				escapeLabel(name), formatFloat(now.Sub(ss.Views[name].SnapshotAt).Seconds()))
		}
		fmt.Fprintf(w, "# TYPE mv_snapshot_view_bytes gauge\n")
		for _, name := range names {
			fmt.Fprintf(w, "mv_snapshot_view_bytes{view=%q} %s\n",
				escapeLabel(name), formatFloat(float64(ss.Views[name].Bytes)))
		}
	}
	if r := ss.Recovery; r != nil {
		cold := 0.0
		if r.Cold {
			cold = 1
		}
		writeGauge(w, "mv_recovery_cold", cold)
		writeGauge(w, "mv_recovery_generation", float64(r.Generation))
		writeGauge(w, "mv_recovery_views_restored", float64(r.ViewsRestored))
		writeGauge(w, "mv_recovery_views_recomputed", float64(r.ViewsRecomputed))
		writeGauge(w, "mv_recovery_corrupt_artifacts", float64(r.CorruptArtifacts))
		writeGauge(w, "mv_recovery_bytes", float64(r.Bytes))
		writeGauge(w, "mv_recovery_duration_seconds", r.Duration.Seconds())
	}
}

// writeRuntimeMetrics exposes Go runtime/process pressure alongside the
// app-level families, so a scrape sees goroutine growth, heap pressure, and
// GC cost without a sidecar exporter — plus the standard build_info marker.
func writeRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeGauge(w, "go_goroutines", float64(runtime.NumGoroutine()))
	writeGauge(w, "go_memstats_heap_alloc_bytes", float64(ms.HeapAlloc))
	writeGauge(w, "go_memstats_heap_sys_bytes", float64(ms.HeapSys))
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %s\n",
		formatFloat(float64(ms.PauseTotalNs)/1e9))
	fmt.Fprintf(w, "# TYPE mvpp_build_info gauge\nmvpp_build_info{go_version=%q,goos=%q,goarch=%q} 1\n",
		escapeLabel(runtime.Version()), runtime.GOOS, runtime.GOARCH)
}

// writeCostMetrics renders the cost-accountability ledger as three gauge
// families: predicted blocks, last-observed actual blocks, and the EWMA
// calibration ratio. Query-class entries are labeled {query=...}; view
// entries {view=...,mode=...} with mode "recompute" or "incremental".
func writeCostMetrics(w io.Writer, rep costaudit.Report) {
	if len(rep.Entries) == 0 {
		return
	}
	labelOf := func(e costaudit.Entry) string {
		if e.Kind == string(costaudit.KindQuery) {
			return fmt.Sprintf("{query=%q}", escapeLabel(e.Name))
		}
		return fmt.Sprintf("{view=%q,mode=%q}", escapeLabel(e.Name), e.Kind)
	}
	families := []struct {
		name string
		f    func(costaudit.Entry) float64
	}{
		{"mv_cost_predicted_blocks", func(e costaudit.Entry) float64 { return e.PredictedBlocks }},
		{"mv_cost_actual_blocks", func(e costaudit.Entry) float64 { return e.LastActualBlocks }},
		{"mv_cost_calibration_ratio", func(e costaudit.Entry) float64 { return e.Ratio }},
	}
	for _, fam := range families {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam.name)
		for _, e := range rep.Entries {
			fmt.Fprintf(w, "%s%s %s\n", fam.name, labelOf(e), formatFloat(fam.f(e)))
		}
	}
	writeGauge(w, "mv_cost_drifted_entries", float64(rep.DriftedEntries))
}

func writeGauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(v))
}

func writeViewGauge(w io.Writer, name string, views map[string]serve.Staleness, order []string, f func(serve.Staleness) float64) {
	if len(order) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	for _, view := range order {
		fmt.Fprintf(w, "%s{view=%q} %s\n", name, escapeLabel(view), formatFloat(f(views[view])))
	}
}

// writeHistogram renders a power-of-two nanosecond histogram as a
// cumulative Prometheus histogram in seconds: bucket i of the snapshot
// counts durations in [2^(i-1), 2^i) ns, so its cumulative upper bound is
// (2^i - 1) ns. Empty trailing buckets collapse into +Inf.
func writeHistogram(w io.Writer, name string, snap obs.HistSnapshot) {
	writeHistogramExemplars(w, name, snap, nil)
}

// writeHistogramExemplars is writeHistogram plus OpenMetrics-style
// exemplars: a bucket line whose bucket has a sampled exemplar gains a
// "# {trace_id=...,query_id=...} value" suffix, linking the latency bucket
// to a concrete trace retrievable from /traces.
func writeHistogramExemplars(w io.Writer, name string, snap obs.HistSnapshot, exemplars []serve.LatencyExemplar) {
	byBucket := make(map[int]serve.LatencyExemplar, len(exemplars))
	for _, e := range exemplars {
		byBucket[e.Bucket] = e
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	hi := -1
	for i, n := range snap.Buckets {
		if n > 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += snap.Buckets[i]
		le := (math.Ldexp(1, i) - 1) / 1e9
		fmt.Fprintf(w, "%s_bucket{le=%q} %d", name, formatFloat(le), cum)
		if e, ok := byBucket[i]; ok {
			fmt.Fprintf(w, " # {trace_id=\"%d\",query_id=\"%d\"} %s",
				e.TraceID, e.QueryID, formatFloat(e.Seconds))
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(snap.Sum)/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// MetricName maps a registry name ("serve.cache_hits") to a Prometheus
// metric name ("mvpp_serve_cache_hits"): illegal characters become
// underscores and everything gets the mvpp_ namespace prefix.
func MetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("mvpp_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format (backslash,
// double quote, newline). The %q wrapping at the call sites handles quoting
// and the first two, so only newlines need replacing before %q — but keep
// the helper total for callers that quote by hand.
func escapeLabel(v string) string {
	return strings.NewReplacer("\n", `\n`).Replace(v)
}

var (
	// metricLineRe accepts a sample line with an optional OpenMetrics-style
	// exemplar suffix (" # {labels} value") as emitted on histogram bucket
	// lines by writeHistogramExemplars.
	metricLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+( # \{[^{}]*\} [^ ]+)?$`)
	typeLineRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
)

// ValidateExposition checks that data is well-formed Prometheus text
// exposition: every line is a # TYPE/# HELP comment or a sample whose
// metric name is legal and whose value parses as a float (exemplar
// suffixes on bucket lines are validated too). It returns the number of
// samples. The bench harness and the mvserve self-scrape both gate on it.
func ValidateExposition(data []byte) (samples int, err error) {
	for lineNo, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") && !typeLineRe.MatchString(line) {
				return samples, fmt.Errorf("telemetry: line %d: malformed TYPE comment %q", lineNo+1, line)
			}
			continue
		}
		if !metricLineRe.MatchString(line) {
			return samples, fmt.Errorf("telemetry: line %d: malformed sample %q", lineNo+1, line)
		}
		value := line[strings.LastIndexByte(line, ' ')+1:]
		if _, perr := strconv.ParseFloat(value, 64); perr != nil {
			return samples, fmt.Errorf("telemetry: line %d: bad value %q: %v", lineNo+1, value, perr)
		}
		samples++
	}
	if samples == 0 {
		return 0, errors.New("telemetry: exposition has no samples")
	}
	return samples, nil
}
