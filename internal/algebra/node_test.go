package algebra

import (
	"strings"
	"testing"
)

// paperPlan builds Query 1 of the paper:
//
//	π Pd.name ( Product ⋈ σ city="LA"(Division) )
func paperPlanQ1() Node {
	div := NewScan("Division", divisionSchema())
	pd := NewScan("Product", productSchema())
	tmp1 := NewSelect(div, Eq(Ref("Division", "city"), StringVal("LA")))
	tmp2 := NewJoin(pd, tmp1, []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}})
	return NewProject(tmp2, []ColumnRef{Ref("Product", "name")})
}

func TestScanBasics(t *testing.T) {
	s := NewScan("Division", divisionSchema())
	if s.Schema().Len() != 3 {
		t.Errorf("schema width = %d", s.Schema().Len())
	}
	if len(s.Children()) != 0 {
		t.Error("scan has children")
	}
	if s.Canonical() != "scan(Division)" {
		t.Errorf("Canonical = %q", s.Canonical())
	}
	if s.Label() != "Division" {
		t.Errorf("Label = %q", s.Label())
	}
}

func TestSelectSchemaPassthrough(t *testing.T) {
	div := NewScan("Division", divisionSchema())
	sel := NewSelect(div, Eq(Ref("Division", "city"), StringVal("LA")))
	if !sel.Schema().Equal(div.Schema()) {
		t.Error("selection must not change schema")
	}
	if !strings.Contains(sel.Canonical(), `Division.city = "LA"`) {
		t.Errorf("Canonical = %q", sel.Canonical())
	}
}

func TestProjectSchema(t *testing.T) {
	p := paperPlanQ1()
	s := p.Schema()
	if s.Len() != 1 || s.Columns[0].QualifiedName() != "Product.name" {
		t.Errorf("schema = %s", s)
	}
}

func TestJoinSchemaConcat(t *testing.T) {
	pd := NewScan("Product", productSchema())
	div := NewScan("Division", divisionSchema())
	j := NewJoin(pd, div, []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}})
	if j.Schema().Len() != 6 {
		t.Errorf("join width = %d", j.Schema().Len())
	}
	if got := len(j.Children()); got != 2 {
		t.Errorf("children = %d", got)
	}
}

func TestCanonicalJoinOrderSensitive(t *testing.T) {
	pd := NewScan("Product", productSchema())
	div := NewScan("Division", divisionSchema())
	on := []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}}
	onRev := []JoinCond{{Left: Ref("Division", "Did"), Right: Ref("Product", "Did")}}
	a := NewJoin(pd, div, on)
	b := NewJoin(div, pd, onRev)
	if a.Canonical() == b.Canonical() {
		t.Error("Canonical should distinguish physical join order")
	}
	if SemanticKey(a) != SemanticKey(b) {
		t.Errorf("SemanticKey should unify commuted joins:\n%s\n%s", SemanticKey(a), SemanticKey(b))
	}
}

func TestSemanticKeyAssociativity(t *testing.T) {
	pd := NewScan("Product", productSchema())
	div := NewScan("Division", divisionSchema())
	pt := NewScan("Part", NewSchema(
		Column{Relation: "Part", Name: "Tid", Type: TypeInt},
		Column{Relation: "Part", Name: "name", Type: TypeString},
		Column{Relation: "Part", Name: "Pid", Type: TypeInt},
	))
	pdDiv := []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}}
	ptPd := []JoinCond{{Left: Ref("Part", "Pid"), Right: Ref("Product", "Pid")}}
	// (Pd ⋈ Div) ⋈ Pt  vs  Pt ⋈ (Pd ⋈ Div)  vs  (Pt ⋈ Pd) ⋈ Div
	a := NewJoin(NewJoin(pd, div, pdDiv), pt, []JoinCond{{Left: Ref("Product", "Pid"), Right: Ref("Part", "Pid")}})
	b := NewJoin(pt, NewJoin(pd, div, pdDiv), ptPd)
	c := NewJoin(NewJoin(pt, pd, ptPd), div, []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}})
	ka, kb, kc := SemanticKey(a), SemanticKey(b), SemanticKey(c)
	if ka != kb || kb != kc {
		t.Errorf("associativity not normalized:\n%s\n%s\n%s", ka, kb, kc)
	}
}

func TestSemanticKeyStackedSelections(t *testing.T) {
	div := NewScan("Division", divisionSchema())
	la := Eq(Ref("Division", "city"), StringVal("LA"))
	re := Eq(Ref("Division", "name"), StringVal("Re"))
	a := NewSelect(NewSelect(div, la), re)
	b := NewSelect(NewSelect(div, re), la)
	c := NewSelect(div, NewAnd(la, re))
	if SemanticKey(a) != SemanticKey(b) || SemanticKey(b) != SemanticKey(c) {
		t.Errorf("selection stacking not normalized:\n%s\n%s\n%s", SemanticKey(a), SemanticKey(b), SemanticKey(c))
	}
}

func TestSemanticKeyDistinguishesDifferentPredicates(t *testing.T) {
	div := NewScan("Division", divisionSchema())
	a := NewSelect(div, Eq(Ref("Division", "city"), StringVal("LA")))
	b := NewSelect(div, Eq(Ref("Division", "city"), StringVal("SF")))
	if SemanticKey(a) == SemanticKey(b) {
		t.Error("different selections must have different keys")
	}
}

func TestStructuralKeyCommutativeNotAssociative(t *testing.T) {
	pd := NewScan("Product", productSchema())
	div := NewScan("Division", divisionSchema())
	pt := NewScan("Part", NewSchema(
		Column{Relation: "Part", Name: "Tid", Type: TypeInt},
		Column{Relation: "Part", Name: "Pid", Type: TypeInt},
	))
	pdDiv := []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}}
	// commuted two-way joins unify
	a := NewJoin(pd, div, pdDiv)
	b := NewJoin(div, pd, []JoinCond{{Left: Ref("Division", "Did"), Right: Ref("Product", "Did")}})
	if StructuralKey(a) != StructuralKey(b) {
		t.Errorf("commuted joins differ:\n%s\n%s", StructuralKey(a), StructuralKey(b))
	}
	// different groupings stay distinct
	grouped := NewJoin(a, pt, []JoinCond{{Left: Ref("Product", "Pid"), Right: Ref("Part", "Pid")}})
	regrouped := NewJoin(NewJoin(pd, pt, []JoinCond{{Left: Ref("Product", "Pid"), Right: Ref("Part", "Pid")}}), div,
		[]JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}})
	if StructuralKey(grouped) == StructuralKey(regrouped) {
		t.Error("different join groupings must have different structural keys")
	}
	// while SemanticKey unifies them
	if SemanticKey(grouped) != SemanticKey(regrouped) {
		t.Error("SemanticKey should unify regroupings")
	}
}

func TestStructuralKeySelections(t *testing.T) {
	div := NewScan("Division", divisionSchema())
	la := Eq(Ref("Division", "city"), StringVal("LA"))
	re := Eq(Ref("Division", "name"), StringVal("Re"))
	// Conjunct order within one selection is canonicalized...
	a := NewSelect(div, NewAnd(la, re))
	b := NewSelect(div, NewAnd(re, la))
	if StructuralKey(a) != StructuralKey(b) {
		t.Errorf("conjunct order changed key:\n%s\n%s", StructuralKey(a), StructuralKey(b))
	}
	// ...but stacking is structural: σre(σla(X)) keeps σla(X) shareable,
	// unlike the merged σ(la∧re)(X).
	stacked := NewSelect(NewSelect(div, la), re)
	if StructuralKey(stacked) == StructuralKey(a) {
		t.Error("stacked selection should differ from merged selection")
	}
}

func TestLeaves(t *testing.T) {
	p := paperPlanQ1()
	got := Leaves(p)
	if len(got) != 2 || got[0] != "Division" || got[1] != "Product" {
		t.Errorf("Leaves = %v", got)
	}
}

func TestWalkOrder(t *testing.T) {
	var labels []string
	Walk(paperPlanQ1(), func(n Node) { labels = append(labels, n.Label()) })
	if len(labels) != 5 {
		t.Fatalf("visited %d nodes: %v", len(labels), labels)
	}
	if !strings.HasPrefix(labels[0], "π") {
		t.Errorf("pre-order should start at root, got %q", labels[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := paperPlanQ1()
	cl := Clone(orig)
	if !Equal(orig, cl) {
		t.Fatal("clone not equal to original")
	}
	// mutate the clone's projection
	cl.(*Project).Cols[0] = Ref("Product", "Pid")
	if Equal(orig, cl) {
		t.Error("mutating clone affected original (aliased slices)")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		node    Node
		wantErr string
	}{
		{"valid plan", paperPlanQ1(), ""},
		{"nil predicate", NewSelect(NewScan("Division", divisionSchema()), nil), "nil predicate"},
		{"bad selection column", NewSelect(NewScan("Division", divisionSchema()), Eq(Ref("Order", "date"), IntVal(1))), "unknown column"},
		{"empty projection", NewProject(NewScan("Division", divisionSchema()), nil), "no columns"},
		{"bad projection column", NewProject(NewScan("Division", divisionSchema()), []ColumnRef{Ref("", "nope")}), "unknown column"},
		{"cartesian join", NewJoin(NewScan("Division", divisionSchema()), NewScan("Product", productSchema()), nil), "no conditions"},
		{"join cond wrong side", NewJoin(
			NewScan("Division", divisionSchema()),
			NewScan("Product", productSchema()),
			[]JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}},
		), "left side"},
		{"empty scan name", NewScan("", divisionSchema()), "empty relation"},
		{"scan without schema", &Scan{Relation: "X"}, "no schema"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Validate(tt.node)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not contain %q", err, tt.wantErr)
			}
		})
	}
}

func TestEqualNil(t *testing.T) {
	if !Equal(nil, nil) {
		t.Error("Equal(nil, nil) = false")
	}
	if Equal(nil, paperPlanQ1()) || Equal(paperPlanQ1(), nil) {
		t.Error("nil vs non-nil should be unequal")
	}
}
