package algebra

// Implies reports whether predicate p logically implies predicate q — every
// row satisfying p also satisfies q. It is sound but deliberately
// incomplete: a false result means "could not prove", not "does not imply".
// The view-subsumption rewriter uses it to answer a query's selection from
// a materialized view with a weaker filter (e.g. σ city='LA' is implied by
// the Figure-8 style shared filter σ city='LA' ∨ city='SF').
//
// The decision procedure understands conjunctions of column-vs-literal
// comparisons (interval reasoning per column), disjunctions on the right
// (prove any disjunct), conjunctions on the right (prove every conjunct),
// and canonical-form equality as a shortcut. Column-vs-column comparisons
// and negations participate only via canonical equality.
func Implies(p, q Predicate) bool {
	if q == nil {
		return true
	}
	if p == nil {
		return false
	}
	if p.String() == q.String() {
		return true
	}
	switch v := q.(type) {
	case *And:
		for _, sub := range v.Preds {
			if !Implies(p, sub) {
				return false
			}
		}
		return true
	case *Or:
		// Sufficient: p proves one disjunct. Also handle the case where p
		// is itself a disjunction: every disjunct of p must imply q.
		if pd, ok := p.(*Or); ok {
			for _, sub := range pd.Preds {
				if !Implies(sub, q) {
					return false
				}
			}
			return true
		}
		for _, sub := range v.Preds {
			if Implies(p, sub) {
				return true
			}
		}
		return false
	case *Comparison:
		return conjunctsImplyComparison(Conjuncts(p), v)
	default:
		return false
	}
}

// bound is one side of a column's derived interval.
type bound struct {
	v      Value
	strict bool // exclusive bound
	set    bool
}

// colConstraint is the interval/equality knowledge about one column under a
// conjunction.
type colConstraint struct {
	eq       *Value // pinned by an equality
	lo, hi   bound
	nonEmpty bool // at least one constraint seen
}

// conjunctsImplyComparison derives the constraint p places on the target
// comparison's column and checks the comparison holds throughout.
func conjunctsImplyComparison(conj []Predicate, target *Comparison) bool {
	if !target.Left.IsColumn || target.Right.IsColumn {
		// Only column-vs-literal targets are decided structurally; fall
		// back to exact conjunct match.
		for _, c := range conj {
			if c.String() == target.String() {
				return true
			}
		}
		return false
	}
	col := target.Left.Col.String()
	cc := colConstraint{}
	for _, c := range conj {
		cmp, ok := c.(*Comparison)
		if !ok || !cmp.Left.IsColumn || cmp.Right.IsColumn {
			continue
		}
		if cmp.Left.Col.String() != col {
			continue
		}
		lit := cmp.Right.Lit
		switch cmp.Op {
		case OpEq:
			v := lit
			cc.eq = &v
			cc.nonEmpty = true
		case OpLt:
			cc.tightenHi(lit, true)
		case OpLe:
			cc.tightenHi(lit, false)
		case OpGt:
			cc.tightenLo(lit, true)
		case OpGe:
			cc.tightenLo(lit, false)
		}
	}
	if !cc.nonEmpty {
		return false
	}
	lit := target.Right.Lit
	if cc.eq != nil {
		// Column pinned: evaluate the target on the pinned value.
		c, err := cc.eq.Compare(lit)
		if err != nil {
			return false
		}
		return target.Op.holds(c)
	}
	switch target.Op {
	case OpEq:
		return false // an interval (not a point) cannot prove equality
	case OpNotEq:
		// Proven when the interval excludes the literal.
		return cc.excludes(lit)
	case OpLt:
		return cc.hi.set && boundBelow(cc.hi, lit, true)
	case OpLe:
		return cc.hi.set && boundBelow(cc.hi, lit, false)
	case OpGt:
		return cc.lo.set && boundAbove(cc.lo, lit, true)
	case OpGe:
		return cc.lo.set && boundAbove(cc.lo, lit, false)
	default:
		return false
	}
}

func (c *colConstraint) tightenHi(v Value, strict bool) {
	c.nonEmpty = true
	if !c.hi.set {
		c.hi = bound{v: v, strict: strict, set: true}
		return
	}
	cmp, err := v.Compare(c.hi.v)
	if err != nil {
		return
	}
	if cmp < 0 || (cmp == 0 && strict && !c.hi.strict) {
		c.hi = bound{v: v, strict: strict, set: true}
	}
}

func (c *colConstraint) tightenLo(v Value, strict bool) {
	c.nonEmpty = true
	if !c.lo.set {
		c.lo = bound{v: v, strict: strict, set: true}
		return
	}
	cmp, err := v.Compare(c.lo.v)
	if err != nil {
		return
	}
	if cmp > 0 || (cmp == 0 && strict && !c.lo.strict) {
		c.lo = bound{v: v, strict: strict, set: true}
	}
}

// excludes reports whether the interval provably excludes the value.
func (c *colConstraint) excludes(v Value) bool {
	if c.hi.set {
		if cmp, err := v.Compare(c.hi.v); err == nil {
			if cmp > 0 || (cmp == 0 && c.hi.strict) {
				return true
			}
		}
	}
	if c.lo.set {
		if cmp, err := v.Compare(c.lo.v); err == nil {
			if cmp < 0 || (cmp == 0 && c.lo.strict) {
				return true
			}
		}
	}
	return false
}

// boundBelow: does "x ⊲ hi" guarantee "x < lit" (strictTarget) or
// "x ≤ lit"?
func boundBelow(hi bound, lit Value, strictTarget bool) bool {
	cmp, err := hi.v.Compare(lit)
	if err != nil {
		return false
	}
	if cmp < 0 {
		return true
	}
	if cmp > 0 {
		return false
	}
	// hi == lit: x < hi proves both x < lit and x ≤ lit; x ≤ hi proves only
	// x ≤ lit.
	return hi.strict || !strictTarget
}

// boundAbove: does "x ⊳ lo" guarantee "x > lit" (strictTarget) or
// "x ≥ lit"?
func boundAbove(lo bound, lit Value, strictTarget bool) bool {
	cmp, err := lo.v.Compare(lit)
	if err != nil {
		return false
	}
	if cmp > 0 {
		return true
	}
	if cmp < 0 {
		return false
	}
	return lo.strict || !strictTarget
}
