package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a logical relational-algebra plan node. A plan is a tree; the MVPP
// layer merges equivalent subtrees from different queries into a DAG using
// the canonical keys defined here.
type Node interface {
	// Schema returns the output schema of the node.
	Schema() *Schema
	// Children returns the input nodes, left to right.
	Children() []Node
	// Canonical returns a canonical string encoding of the subtree that is
	// order-sensitive for join inputs (i.e. it identifies a particular
	// physical shape).
	Canonical() string
	// Label returns a short human-readable description of just this
	// operation (used by plan and MVPP renderers).
	Label() string
}

// Scan reads a base relation.
type Scan struct {
	Relation string
	Rel      *Schema
}

var _ Node = (*Scan)(nil)

// NewScan builds a scan over the named relation with the given schema.
func NewScan(relation string, schema *Schema) *Scan {
	return &Scan{Relation: relation, Rel: schema}
}

// Schema implements Node.
func (s *Scan) Schema() *Schema { return s.Rel }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Canonical implements Node.
func (s *Scan) Canonical() string { return "scan(" + s.Relation + ")" }

// Label implements Node.
func (s *Scan) Label() string { return s.Relation }

// Select filters its input by a predicate.
type Select struct {
	Input Node
	Pred  Predicate
}

var _ Node = (*Select)(nil)

// NewSelect builds a selection. A nil predicate is rejected at plan
// validation time (Validate); construction is permissive to keep rewrites
// simple.
func NewSelect(input Node, pred Predicate) *Select {
	return &Select{Input: input, Pred: pred}
}

// Schema implements Node.
func (s *Select) Schema() *Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// Canonical implements Node.
func (s *Select) Canonical() string {
	return "select[" + predString(s.Pred) + "](" + s.Input.Canonical() + ")"
}

// Label implements Node.
func (s *Select) Label() string { return "σ " + predString(s.Pred) }

// Project restricts its input to the referenced columns.
type Project struct {
	Input Node
	Cols  []ColumnRef

	schema *Schema // lazily resolved
}

var _ Node = (*Project)(nil)

// NewProject builds a projection onto the given columns.
func NewProject(input Node, cols []ColumnRef) *Project {
	cp := make([]ColumnRef, len(cols))
	copy(cp, cols)
	return &Project{Input: input, Cols: cp}
}

// Schema implements Node. An unresolvable projection column yields a
// best-effort schema with the offending columns omitted; Validate reports
// the error properly.
func (p *Project) Schema() *Schema {
	if p.schema != nil {
		return p.schema
	}
	in := p.Input.Schema()
	cols := make([]Column, 0, len(p.Cols))
	for _, ref := range p.Cols {
		if i := in.IndexOf(ref); i >= 0 {
			cols = append(cols, in.Columns[i])
		}
	}
	p.schema = &Schema{Columns: cols}
	return p.schema
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Canonical implements Node. Column order is not semantically significant
// for view sharing, so the canonical form sorts columns.
func (p *Project) Canonical() string {
	return "project[" + refsString(p.Cols, true) + "](" + p.Input.Canonical() + ")"
}

// Label implements Node.
func (p *Project) Label() string { return "π " + refsString(p.Cols, false) }

// JoinCond is one equality condition of an equi-join.
type JoinCond struct {
	Left  ColumnRef // resolves against the left input
	Right ColumnRef // resolves against the right input
}

// String renders "left = right".
func (c JoinCond) String() string { return c.Left.String() + " = " + c.Right.String() }

// CanonicalString renders the condition with its sides ordered
// lexicographically, so that A⋈B and B⋈A conditions agree.
func (c JoinCond) CanonicalString() string {
	l, r := c.Left.String(), c.Right.String()
	if r < l {
		l, r = r, l
	}
	return l + " = " + r
}

// Join is an equi-join (the paper's framework is select-project-join).
type Join struct {
	Left  Node
	Right Node
	On    []JoinCond
}

var _ Node = (*Join)(nil)

// NewJoin builds an equi-join.
func NewJoin(left, right Node, on []JoinCond) *Join {
	cp := make([]JoinCond, len(on))
	copy(cp, on)
	return &Join{Left: left, Right: right, On: cp}
}

// Schema implements Node.
func (j *Join) Schema() *Schema { return j.Left.Schema().Concat(j.Right.Schema()) }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Canonical implements Node.
func (j *Join) Canonical() string {
	return "join[" + j.condString() + "](" + j.Left.Canonical() + ", " + j.Right.Canonical() + ")"
}

func (j *Join) condString() string {
	parts := make([]string, len(j.On))
	for i, c := range j.On {
		parts[i] = c.CanonicalString()
	}
	sort.Strings(parts)
	return strings.Join(parts, " AND ")
}

// Label implements Node.
func (j *Join) Label() string { return "⋈ " + j.condString() }

// predString renders a possibly nil predicate.
func predString(p Predicate) string {
	if p == nil {
		return "true"
	}
	return p.String()
}

// refsString renders column references, optionally in sorted canonical
// order.
func refsString(refs []ColumnRef, canonical bool) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	if canonical {
		sort.Strings(parts)
	}
	return strings.Join(parts, ", ")
}

// Leaves returns the sorted set of base-relation names under the node.
func Leaves(n Node) []string {
	seen := make(map[string]bool, 8)
	var out []string
	Walk(n, func(m Node) {
		if s, ok := m.(*Scan); ok && !seen[s.Relation] {
			seen[s.Relation] = true
			out = append(out, s.Relation)
		}
	})
	sort.Strings(out)
	return out
}

// Walk visits the subtree rooted at n in pre-order.
func Walk(n Node, visit func(Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// Transform rebuilds the tree bottom-up, applying f to every node after its
// children have been transformed. f may return the node unchanged.
func Transform(n Node, f func(Node) Node) Node {
	if n == nil {
		return nil
	}
	switch v := n.(type) {
	case *Scan:
		return f(v)
	case *Select:
		return f(NewSelect(Transform(v.Input, f), v.Pred))
	case *Project:
		return f(NewProject(Transform(v.Input, f), v.Cols))
	case *Join:
		return f(NewJoin(Transform(v.Left, f), Transform(v.Right, f), v.On))
	case *Aggregate:
		return f(NewAggregate(Transform(v.Input, f), v.GroupBy, v.Aggs))
	default:
		return f(n)
	}
}

// Clone deep-copies a plan tree.
func Clone(n Node) Node {
	return Transform(n, func(m Node) Node { return m })
}

// Equal reports canonical equality of two plans.
func Equal(a, b Node) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Canonical() == b.Canonical()
}

// Validate checks that the plan is well formed: predicates resolve against
// their input schemas, projections name existing columns, and join
// conditions resolve against the correct sides.
func Validate(n Node) error {
	switch v := n.(type) {
	case nil:
		return fmt.Errorf("algebra: nil plan node")
	case *Scan:
		if v.Relation == "" {
			return fmt.Errorf("algebra: scan with empty relation name")
		}
		if v.Rel == nil || v.Rel.Len() == 0 {
			return fmt.Errorf("algebra: scan of %s has no schema", v.Relation)
		}
		return nil
	case *Select:
		if err := Validate(v.Input); err != nil {
			return err
		}
		if v.Pred == nil {
			return fmt.Errorf("algebra: selection with nil predicate")
		}
		in := v.Input.Schema()
		for _, ref := range v.Pred.Columns() {
			if _, err := in.Resolve(ref); err != nil {
				return fmt.Errorf("algebra: selection %s: %w", v.Pred, err)
			}
		}
		return nil
	case *Project:
		if err := Validate(v.Input); err != nil {
			return err
		}
		if len(v.Cols) == 0 {
			return fmt.Errorf("algebra: projection with no columns")
		}
		in := v.Input.Schema()
		for _, ref := range v.Cols {
			if _, err := in.Resolve(ref); err != nil {
				return fmt.Errorf("algebra: projection: %w", err)
			}
		}
		return nil
	case *Join:
		if err := Validate(v.Left); err != nil {
			return err
		}
		if err := Validate(v.Right); err != nil {
			return err
		}
		if len(v.On) == 0 {
			return fmt.Errorf("algebra: join with no conditions (cartesian products are not supported)")
		}
		ls, rs := v.Left.Schema(), v.Right.Schema()
		for _, c := range v.On {
			if _, err := ls.Resolve(c.Left); err != nil {
				return fmt.Errorf("algebra: join condition %s: left side: %w", c, err)
			}
			if _, err := rs.Resolve(c.Right); err != nil {
				return fmt.Errorf("algebra: join condition %s: right side: %w", c, err)
			}
		}
		return nil
	case *Aggregate:
		return validateAggregate(v)
	default:
		return fmt.Errorf("algebra: unknown node type %T", n)
	}
}
