package algebra

import (
	"strings"
	"testing"
)

func orderSchema() *Schema {
	return NewSchema(
		Column{Relation: "Order", Name: "Pid", Type: TypeInt},
		Column{Relation: "Order", Name: "Cid", Type: TypeInt},
		Column{Relation: "Order", Name: "quantity", Type: TypeInt},
		Column{Relation: "Order", Name: "date", Type: TypeDate},
	)
}

func customerSchema() *Schema {
	return NewSchema(
		Column{Relation: "Customer", Name: "Cid", Type: TypeInt},
		Column{Relation: "Customer", Name: "name", Type: TypeString},
		Column{Relation: "Customer", Name: "city", Type: TypeString},
	)
}

// q4Plan builds paper Query 4: π city,date ( σ quantity>100(Order) ⋈ Customer )
func q4Plan() Node {
	ord := NewScan("Order", orderSchema())
	cust := NewScan("Customer", customerSchema())
	sel := NewSelect(ord, Compare(ColOperand(Ref("Order", "quantity")), OpGt, LitOperand(IntVal(100))))
	j := NewJoin(sel, cust, []JoinCond{{Left: Ref("Order", "Cid"), Right: Ref("Customer", "Cid")}})
	return NewProject(j, []ColumnRef{Ref("Customer", "city"), Ref("Order", "date")})
}

func TestDecompose(t *testing.T) {
	d, err := Decompose(q4Plan())
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(d.Selections) != 1 || d.Selections[0].String() != "Order.quantity > 100" {
		t.Errorf("Selections = %v", d.Selections)
	}
	if len(d.Output) != 2 {
		t.Errorf("Output = %v", d.Output)
	}
	// join tree must contain only scans and joins
	Walk(d.JoinTree, func(n Node) {
		switch n.(type) {
		case *Scan, *Join:
		default:
			t.Errorf("join tree contains %T", n)
		}
	})
	if got := Leaves(d.JoinTree); len(got) != 2 {
		t.Errorf("leaves = %v", got)
	}
}

func TestDecomposeComposeEquivalentSemantics(t *testing.T) {
	d, err := Decompose(q4Plan())
	if err != nil {
		t.Fatal(err)
	}
	composed := d.Compose()
	// Composed form is select-on-top: project(select(join))
	p, ok := composed.(*Project)
	if !ok {
		t.Fatalf("composed root = %T", composed)
	}
	if _, ok := p.Input.(*Select); !ok {
		t.Fatalf("expected selection under projection, got %T", p.Input)
	}
	// Pushing back down must recover a plan with the selection on the scan.
	down := Normalize(PushDownSelections(composed))
	found := false
	Walk(down, func(n Node) {
		if s, ok := n.(*Select); ok {
			if _, isScan := s.Input.(*Scan); isScan {
				found = true
			}
		}
	})
	if !found {
		t.Error("push-down did not place selection above scan")
	}
}

func TestPushDownSelectionsSplitsAcrossJoin(t *testing.T) {
	ord := NewScan("Order", orderSchema())
	cust := NewScan("Customer", customerSchema())
	j := NewJoin(ord, cust, []JoinCond{{Left: Ref("Order", "Cid"), Right: Ref("Customer", "Cid")}})
	pred := NewAnd(
		Compare(ColOperand(Ref("Order", "quantity")), OpGt, LitOperand(IntVal(100))),
		Eq(Ref("Customer", "city"), StringVal("LA")),
	)
	down := PushDownSelections(NewSelect(j, pred))
	root, ok := down.(*Join)
	if !ok {
		t.Fatalf("root after push-down = %T, want *Join", down)
	}
	for side, child := range map[string]Node{"left": root.Left, "right": root.Right} {
		if _, ok := child.(*Select); !ok {
			t.Errorf("%s child = %T, want selection above scan", side, child)
		}
	}
}

func TestPushDownSelectionsKeepsCrossPredicates(t *testing.T) {
	ord := NewScan("Order", orderSchema())
	cust := NewScan("Customer", customerSchema())
	j := NewJoin(ord, cust, []JoinCond{{Left: Ref("Order", "Cid"), Right: Ref("Customer", "Cid")}})
	// predicate spanning both sides cannot be pushed
	cross := ColEq(Ref("Order", "Pid"), Ref("Customer", "Cid"))
	down := PushDownSelections(NewSelect(j, cross))
	s, ok := down.(*Select)
	if !ok {
		t.Fatalf("cross predicate moved: root = %T", down)
	}
	if _, ok := s.Input.(*Join); !ok {
		t.Fatalf("selection should sit on join, got %T", s.Input)
	}
}

func TestPushDownDisjunctionSingleRelation(t *testing.T) {
	div := NewScan("Division", divisionSchema())
	pd := NewScan("Product", productSchema())
	j := NewJoin(pd, div, []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}})
	// (city=LA OR city=SF OR name=Re) — all on Division, as in Figure 8.
	dis := NewOr(
		Eq(Ref("Division", "city"), StringVal("LA")),
		Eq(Ref("Division", "city"), StringVal("SF")),
		Eq(Ref("Division", "name"), StringVal("Re")),
	)
	down := PushDownSelections(NewSelect(j, dis))
	root, ok := down.(*Join)
	if !ok {
		t.Fatalf("root = %T", down)
	}
	sel, ok := root.Right.(*Select)
	if !ok {
		t.Fatalf("right child = %T, want selection on Division", root.Right)
	}
	if !strings.Contains(sel.Pred.String(), "OR") {
		t.Errorf("pushed predicate = %s", sel.Pred)
	}
}

func TestPruneColumns(t *testing.T) {
	d, err := Decompose(q4Plan())
	if err != nil {
		t.Fatal(err)
	}
	pruned := Normalize(PruneColumns(PushDownSelections(d.Compose()), nil))
	if err := Validate(pruned); err != nil {
		t.Fatalf("pruned plan invalid: %v", err)
	}
	// Above σ quantity>100(Order) we expect a projection keeping only
	// {Cid (join), date (output)} — quantity is consumed by the selection.
	var ordProj *Project
	Walk(pruned, func(n Node) {
		if p, ok := n.(*Project); ok {
			if len(Leaves(p)) == 1 && Leaves(p)[0] == "Order" {
				ordProj = p
			}
		}
	})
	if ordProj == nil {
		t.Fatal("no projection above Order subtree")
	}
	if got := len(ordProj.Cols); got != 2 {
		t.Errorf("Order-side projection keeps %d cols (%v), want 2", got, ordProj.Cols)
	}
	if _, ok := ordProj.Input.(*Select); !ok {
		t.Errorf("projection should sit above the selection, got %T", ordProj.Input)
	}
}

func TestPruneColumnsPreservesSemanticsOnFullRequirement(t *testing.T) {
	scan := NewScan("Customer", customerSchema())
	got := PruneColumns(scan, nil)
	if !Equal(scan, got) {
		t.Errorf("PruneColumns(scan, nil) rewrote the scan: %s", got.Canonical())
	}
}

func TestNormalizeMergesStackedOps(t *testing.T) {
	div := NewScan("Division", divisionSchema())
	la := Eq(Ref("Division", "city"), StringVal("LA"))
	re := Eq(Ref("Division", "name"), StringVal("Re"))
	stacked := NewSelect(NewSelect(div, la), re)
	n := Normalize(stacked)
	s, ok := n.(*Select)
	if !ok {
		t.Fatalf("Normalize = %T", n)
	}
	if _, ok := s.Input.(*Scan); !ok {
		t.Errorf("selections not merged: input is %T", s.Input)
	}

	pp := NewProject(NewProject(div, []ColumnRef{Ref("Division", "Did"), Ref("Division", "city")}), []ColumnRef{Ref("Division", "city")})
	n = Normalize(pp)
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("Normalize = %T", n)
	}
	if _, ok := p.Input.(*Scan); !ok {
		t.Errorf("projections not collapsed: input is %T", p.Input)
	}
}

func TestNormalizeDropsIdentityProjection(t *testing.T) {
	div := NewScan("Division", divisionSchema())
	idp := NewProject(div, []ColumnRef{
		Ref("Division", "Did"), Ref("Division", "name"), Ref("Division", "city"),
	})
	if got := Normalize(idp); !Equal(got, div) {
		t.Errorf("identity projection survived: %s", got.Canonical())
	}
	// Reordering projection is NOT identity.
	reorder := NewProject(div, []ColumnRef{
		Ref("Division", "city"), Ref("Division", "Did"), Ref("Division", "name"),
	})
	if got := Normalize(reorder); Equal(got, div) {
		t.Error("reordering projection wrongly dropped")
	}
}

func TestPushDownThenPruneRoundTripValid(t *testing.T) {
	// Combined pipeline on the paper's Q4 keeps validity and semantics keys.
	plan := q4Plan()
	opt := Normalize(PruneColumns(PushDownSelections(plan), nil))
	if err := Validate(opt); err != nil {
		t.Fatalf("optimized plan invalid: %v", err)
	}
	if got, want := Leaves(opt), Leaves(plan); len(got) != len(want) {
		t.Errorf("leaves changed: %v vs %v", got, want)
	}
}
