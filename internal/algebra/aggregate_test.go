package algebra

import (
	"strings"
	"testing"
)

func sumQuantity() Aggregation {
	return Aggregation{Func: AggSum, Arg: Ref("Order", "quantity"), Alias: "total"}
}

func countAll() Aggregation {
	return Aggregation{Func: AggCount, Alias: "n"}
}

func ordersAgg() *Aggregate {
	return NewAggregate(
		NewScan("Order", orderSchema()),
		[]ColumnRef{Ref("Order", "Cid")},
		[]Aggregation{sumQuantity(), countAll()},
	)
}

func TestAggregateSchema(t *testing.T) {
	g := ordersAgg()
	s := g.Schema()
	if s.Len() != 3 {
		t.Fatalf("schema = %s", s)
	}
	if s.Columns[0].QualifiedName() != "Order.Cid" {
		t.Errorf("group column = %s", s.Columns[0].QualifiedName())
	}
	if s.Columns[1].Name != "total" || s.Columns[1].Type != TypeInt {
		t.Errorf("sum column = %+v", s.Columns[1])
	}
	if s.Columns[2].Name != "n" || s.Columns[2].Type != TypeInt {
		t.Errorf("count column = %+v", s.Columns[2])
	}
}

func TestAggregateSchemaAvgIsFloat(t *testing.T) {
	g := NewAggregate(NewScan("Order", orderSchema()), nil,
		[]Aggregation{{Func: AggAvg, Arg: Ref("Order", "quantity"), Alias: "avg_q"}})
	if got := g.Schema().Columns[0].Type; got != TypeFloat {
		t.Errorf("AVG type = %v, want float", got)
	}
}

func TestAggregateValidate(t *testing.T) {
	tests := []struct {
		name    string
		agg     *Aggregate
		wantErr string
	}{
		{"valid", ordersAgg(), ""},
		{"no functions", NewAggregate(NewScan("Order", orderSchema()), nil, nil), "no aggregation functions"},
		{"missing alias", NewAggregate(NewScan("Order", orderSchema()), nil,
			[]Aggregation{{Func: AggSum, Arg: Ref("Order", "quantity")}}), "no alias"},
		{"duplicate alias", NewAggregate(NewScan("Order", orderSchema()), nil,
			[]Aggregation{
				{Func: AggSum, Arg: Ref("Order", "quantity"), Alias: "x"},
				{Func: AggCount, Alias: "x"},
			}), "duplicate aggregation alias"},
		{"bad group column", NewAggregate(NewScan("Order", orderSchema()),
			[]ColumnRef{Ref("Order", "ghost")},
			[]Aggregation{countAll()}), "GROUP BY"},
		{"bad arg column", NewAggregate(NewScan("Order", orderSchema()), nil,
			[]Aggregation{{Func: AggSum, Arg: Ref("Order", "ghost"), Alias: "s"}}), "unknown column"},
		{"sum without arg", NewAggregate(NewScan("Order", orderSchema()), nil,
			[]Aggregation{{Func: AggSum, Alias: "s"}}), "requires an argument"},
		{"sum over string", NewAggregate(NewScan("Customer", customerSchema()), nil,
			[]Aggregation{{Func: AggSum, Arg: Ref("Customer", "name"), Alias: "s"}}), "non-numeric"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Validate(tt.agg)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error = %v, want %q", err, tt.wantErr)
			}
		})
	}
}

func TestAggregateMinMaxOverStringsAllowed(t *testing.T) {
	g := NewAggregate(NewScan("Customer", customerSchema()), nil,
		[]Aggregation{{Func: AggMin, Arg: Ref("Customer", "name"), Alias: "first"}})
	if err := Validate(g); err != nil {
		t.Errorf("MIN over string rejected: %v", err)
	}
}

func TestAggregateKeysCanonical(t *testing.T) {
	a := NewAggregate(NewScan("Order", orderSchema()),
		[]ColumnRef{Ref("Order", "Cid"), Ref("Order", "Pid")},
		[]Aggregation{sumQuantity(), countAll()})
	b := NewAggregate(NewScan("Order", orderSchema()),
		[]ColumnRef{Ref("Order", "Pid"), Ref("Order", "Cid")},
		[]Aggregation{countAll(), sumQuantity()})
	if StructuralKey(a) != StructuralKey(b) {
		t.Error("group/agg order changed structural key")
	}
	if SemanticKey(a) != SemanticKey(b) {
		t.Error("group/agg order changed semantic key")
	}
	c := NewAggregate(NewScan("Order", orderSchema()),
		[]ColumnRef{Ref("Order", "Cid")},
		[]Aggregation{sumQuantity(), countAll()})
	if StructuralKey(a) == StructuralKey(c) {
		t.Error("different group sets share a key")
	}
}

func TestAggregateDecomposeCompose(t *testing.T) {
	ord := NewScan("Order", orderSchema())
	cust := NewScan("Customer", customerSchema())
	join := NewJoin(ord, cust, []JoinCond{{Left: Ref("Order", "Cid"), Right: Ref("Customer", "Cid")}})
	sel := NewSelect(join, Compare(ColOperand(Ref("Order", "quantity")), OpGt, LitOperand(IntVal(100))))
	plan := NewAggregate(sel, []ColumnRef{Ref("Customer", "city")},
		[]Aggregation{sumQuantity()})

	d, err := Decompose(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d.TopAgg == nil {
		t.Fatal("TopAgg not recorded")
	}
	if len(d.Selections) != 1 {
		t.Errorf("selections = %v", d.Selections)
	}
	re := d.Compose()
	if _, ok := re.(*Aggregate); !ok {
		t.Fatalf("composed root = %T", re)
	}
	if err := Validate(re); err != nil {
		t.Fatalf("composed plan invalid: %v", err)
	}
}

func TestAggregateBelowRootRejected(t *testing.T) {
	inner := ordersAgg()
	plan := NewProject(inner, []ColumnRef{Ref("", "total")})
	if _, err := Decompose(plan); err == nil || !strings.Contains(err.Error(), "below the plan root") {
		t.Errorf("Decompose error = %v", err)
	}
}

func TestAggregatePruneColumns(t *testing.T) {
	ord := NewScan("Order", orderSchema())
	cust := NewScan("Customer", customerSchema())
	join := NewJoin(ord, cust, []JoinCond{{Left: Ref("Order", "Cid"), Right: Ref("Customer", "Cid")}})
	plan := NewAggregate(join, []ColumnRef{Ref("Customer", "city")},
		[]Aggregation{sumQuantity()})
	pruned := Normalize(PruneColumns(plan, nil))
	if err := Validate(pruned); err != nil {
		t.Fatalf("pruned plan invalid: %v", err)
	}
	// The Customer side should shrink to {Cid, city}.
	found := false
	Walk(pruned, func(n Node) {
		if p, ok := n.(*Project); ok {
			leaves := Leaves(p)
			if len(leaves) == 1 && leaves[0] == "Customer" && len(p.Cols) == 2 {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("Customer side not pruned:\n%s", pruned.Canonical())
	}
}

func TestAggregatePushDownSelectionsStopsAtAggregate(t *testing.T) {
	g := ordersAgg()
	outer := NewSelect(g, Compare(ColOperand(Ref("", "total")), OpGt, LitOperand(IntVal(10))))
	down := PushDownSelections(outer)
	s, ok := down.(*Select)
	if !ok {
		t.Fatalf("selection moved below aggregate: %T", down)
	}
	if _, ok := s.Input.(*Aggregate); !ok {
		t.Fatalf("selection input = %T", s.Input)
	}
	if err := Validate(down); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestAggregateTransformClone(t *testing.T) {
	g := ordersAgg()
	cl := Clone(g)
	if !Equal(g, cl) {
		t.Error("clone differs")
	}
	cl.(*Aggregate).GroupBy[0] = Ref("Order", "Pid")
	if Equal(g, cl) {
		t.Error("clone aliases group slice")
	}
}

func TestAggregateLabel(t *testing.T) {
	l := ordersAgg().Label()
	for _, want := range []string{"γ", "SUM(Order.quantity) AS total", "COUNT(*) AS n", "BY Order.Cid"} {
		if !strings.Contains(l, want) {
			t.Errorf("label %q missing %q", l, want)
		}
	}
}
