package algebra

import (
	"testing"
	"testing/quick"
)

func laTuple(t *testing.T) *Tuple {
	t.Helper()
	tup, err := NewTuple(divisionSchema(), []Value{IntVal(1), StringVal("West"), StringVal("LA")})
	if err != nil {
		t.Fatal(err)
	}
	return tup
}

func TestComparisonCanonicalOrientation(t *testing.T) {
	// literal-on-left flips to literal-on-right
	c := Compare(LitOperand(StringVal("LA")), OpEq, ColOperand(Ref("Division", "city")))
	if got, want := c.String(), `Division.city = "LA"`; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// "5 < col" flips to "col > 5"
	c = Compare(LitOperand(IntVal(5)), OpLt, ColOperand(Ref("Order", "quantity")))
	if got, want := c.String(), "Order.quantity > 5"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// column-column orders lexicographically
	a := ColEq(Ref("Product", "Did"), Ref("Division", "Did"))
	b := ColEq(Ref("Division", "Did"), Ref("Product", "Did"))
	if a.String() != b.String() {
		t.Errorf("join predicate canonicalization differs: %q vs %q", a, b)
	}
}

func TestComparisonEval(t *testing.T) {
	div := laTuple(t)
	tests := []struct {
		name string
		pred Predicate
		want bool
	}{
		{"eq match", Eq(Ref("Division", "city"), StringVal("LA")), true},
		{"eq mismatch", Eq(Ref("Division", "city"), StringVal("SF")), false},
		{"noteq", Compare(ColOperand(Ref("Division", "city")), OpNotEq, LitOperand(StringVal("SF"))), true},
		{"lt", Compare(ColOperand(Ref("Division", "Did")), OpLt, LitOperand(IntVal(2))), true},
		{"le", Compare(ColOperand(Ref("Division", "Did")), OpLe, LitOperand(IntVal(1))), true},
		{"gt false", Compare(ColOperand(Ref("Division", "Did")), OpGt, LitOperand(IntVal(1))), false},
		{"ge", Compare(ColOperand(Ref("Division", "Did")), OpGe, LitOperand(IntVal(1))), true},
		{"unqualified", Eq(Ref("", "city"), StringVal("LA")), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.pred.Eval(div)
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComparisonEvalErrors(t *testing.T) {
	div := laTuple(t)
	if _, err := Eq(Ref("Order", "date"), IntVal(1)).Eval(div); err == nil {
		t.Error("unbound column should error")
	}
	if _, err := Eq(Ref("Division", "city"), IntVal(1)).Eval(div); err == nil {
		t.Error("string/int comparison should error")
	}
}

func TestNewAndFlattening(t *testing.T) {
	p1 := Eq(Ref("D", "city"), StringVal("LA"))
	p2 := Eq(Ref("D", "name"), StringVal("Re"))
	p3 := Eq(Ref("O", "q"), IntVal(1))
	nested := NewAnd(p3, NewAnd(p1, p2))
	a, ok := nested.(*And)
	if !ok {
		t.Fatalf("NewAnd = %T", nested)
	}
	if len(a.Preds) != 3 {
		t.Fatalf("conjuncts = %d, want 3 (flattened)", len(a.Preds))
	}
	// canonical: sorted, so equal regardless of argument order
	other := NewAnd(p1, NewAnd(p2, p3))
	if nested.String() != other.String() {
		t.Errorf("AND canonical differs: %q vs %q", nested, other)
	}
}

func TestNewAndCollapse(t *testing.T) {
	p := Eq(Ref("D", "city"), StringVal("LA"))
	if got := NewAnd(p); got != Predicate(p) {
		t.Errorf("single-element AND should collapse, got %v", got)
	}
	if got := NewAnd(); got != nil {
		t.Errorf("empty AND should be nil, got %v", got)
	}
	if got := NewAnd(nil, p, nil); got != Predicate(p) {
		t.Errorf("nil conjuncts should be skipped, got %v", got)
	}
	// duplicates deduplicate
	dup := NewAnd(p, Eq(Ref("D", "city"), StringVal("LA")))
	if dup != Predicate(p) {
		if a, ok := dup.(*And); ok {
			t.Errorf("duplicate conjuncts not deduplicated: %d", len(a.Preds))
		}
	}
}

func TestNewOrSemantics(t *testing.T) {
	div := laTuple(t)
	la := Eq(Ref("Division", "city"), StringVal("LA"))
	sf := Eq(Ref("Division", "city"), StringVal("SF"))
	or := NewOr(sf, la)
	ok, err := or.Eval(div)
	if err != nil || !ok {
		t.Errorf("Eval(OR) = %v, %v", ok, err)
	}
	both := NewAnd(sf, la)
	ok, err = both.Eval(div)
	if err != nil || ok {
		t.Errorf("Eval(AND) = %v, %v; want false", ok, err)
	}
}

func TestDisjoin(t *testing.T) {
	la := Eq(Ref("D", "city"), StringVal("LA"))
	sf := Eq(Ref("D", "city"), StringVal("SF"))
	d := Disjoin([]Predicate{la, sf})
	if d == nil {
		t.Fatal("Disjoin = nil")
	}
	if _, ok := d.(*Or); !ok {
		t.Fatalf("Disjoin = %T", d)
	}
	// A nil element means one query has no restriction → whole disjunction
	// is vacuous.
	if got := Disjoin([]Predicate{la, nil, sf}); got != nil {
		t.Errorf("Disjoin with nil member = %v, want nil", got)
	}
	if got := Disjoin([]Predicate{la}); !PredEqual(got, la) {
		t.Errorf("Disjoin single = %v", got)
	}
}

func TestNotEval(t *testing.T) {
	div := laTuple(t)
	n := NewNot(Eq(Ref("Division", "city"), StringVal("SF")))
	ok, err := n.Eval(div)
	if err != nil || !ok {
		t.Errorf("Eval(NOT) = %v, %v", ok, err)
	}
	if got := NewNot(n); got.String() != `Division.city = "SF"` {
		t.Errorf("double negation = %q", got)
	}
}

func TestPredEqual(t *testing.T) {
	la1 := Eq(Ref("D", "city"), StringVal("LA"))
	la2 := Compare(LitOperand(StringVal("LA")), OpEq, ColOperand(Ref("D", "city")))
	if !PredEqual(la1, la2) {
		t.Error("canonically equal predicates reported unequal")
	}
	if !PredEqual(nil, nil) {
		t.Error("nil == nil")
	}
	if PredEqual(la1, nil) || PredEqual(nil, la1) {
		t.Error("nil != non-nil")
	}
}

func TestConjuncts(t *testing.T) {
	p1 := Eq(Ref("D", "city"), StringVal("LA"))
	p2 := Eq(Ref("O", "q"), IntVal(1))
	if got := Conjuncts(nil); len(got) != 0 {
		t.Errorf("Conjuncts(nil) = %v", got)
	}
	if got := Conjuncts(p1); len(got) != 1 || got[0] != Predicate(p1) {
		t.Errorf("Conjuncts(single) = %v", got)
	}
	if got := Conjuncts(NewAnd(p1, p2)); len(got) != 2 {
		t.Errorf("Conjuncts(and) = %v", got)
	}
	// An OR is a single conjunct.
	if got := Conjuncts(NewOr(p1, p2)); len(got) != 1 {
		t.Errorf("Conjuncts(or) = %v", got)
	}
}

func TestPredicateColumns(t *testing.T) {
	p := NewAnd(
		Eq(Ref("Division", "city"), StringVal("LA")),
		ColEq(Ref("Product", "Did"), Ref("Division", "Did")),
	)
	cols := p.Columns()
	want := []string{"Division.Did", "Division.city", "Product.Did"}
	if len(cols) != len(want) {
		t.Fatalf("Columns() = %v", cols)
	}
	for i, w := range want {
		if cols[i].String() != w {
			t.Errorf("Columns()[%d] = %s, want %s", i, cols[i], w)
		}
	}
}

// Property: De-Morgan-ish sanity — NOT(a AND b) evaluates as !(a&&b) on
// random int tuples.
func TestNotAndProperty(t *testing.T) {
	schema := NewSchema(
		Column{Relation: "R", Name: "x", Type: TypeInt},
		Column{Relation: "R", Name: "y", Type: TypeInt},
	)
	f := func(x, y int64, bound int64) bool {
		tup := &Tuple{Schema: schema, Values: []Value{IntVal(x), IntVal(y)}}
		a := Compare(ColOperand(Ref("R", "x")), OpGt, LitOperand(IntVal(bound)))
		b := Compare(ColOperand(Ref("R", "y")), OpLe, LitOperand(IntVal(bound)))
		lhs, err := NewNot(NewAnd(a, b)).Eval(tup)
		if err != nil {
			return false
		}
		av, _ := a.Eval(tup)
		bv, _ := b.Eval(tup)
		return lhs == !(av && bv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flattened AND evaluation equals short-circuit conjunction of
// members in any nesting arrangement.
func TestAndNestingInvariance(t *testing.T) {
	schema := NewSchema(Column{Relation: "R", Name: "x", Type: TypeInt})
	f := func(x int64, b1, b2, b3 int64) bool {
		tup := &Tuple{Schema: schema, Values: []Value{IntVal(x)}}
		p1 := Compare(ColOperand(Ref("R", "x")), OpGt, LitOperand(IntVal(b1)))
		p2 := Compare(ColOperand(Ref("R", "x")), OpLe, LitOperand(IntVal(b2)))
		p3 := Compare(ColOperand(Ref("R", "x")), OpNotEq, LitOperand(IntVal(b3)))
		l, err1 := NewAnd(NewAnd(p1, p2), p3).Eval(tup)
		r, err2 := NewAnd(p1, NewAnd(p2, p3)).Eval(tup)
		return err1 == nil && err2 == nil && l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
