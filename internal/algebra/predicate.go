package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// CompareOp is a comparison operator in a selection predicate.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota + 1
	OpNotEq
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNotEq:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// flip returns the operator with its operands exchanged (a < b ⇔ b > a).
func (op CompareOp) flip() CompareOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// holds applies the operator to a three-way comparison result.
func (op CompareOp) holds(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNotEq:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// Binding supplies column values during predicate evaluation.
type Binding interface {
	// ColumnValue resolves a reference to its value in the current row. The
	// second result is false when the reference does not resolve.
	ColumnValue(ref ColumnRef) (Value, bool)
}

// Predicate is a boolean condition over a single row (selection) or a pair
// of rows presented as one concatenated binding (join). The canonical string
// form returned by String is the identity used for common-subexpression
// detection: two predicates are semantically merged when their canonical
// forms match.
type Predicate interface {
	fmt.Stringer
	// Columns returns every column referenced by the predicate, in canonical
	// (sorted, deduplicated) order.
	Columns() []ColumnRef
	// Eval evaluates the predicate against a row binding.
	Eval(b Binding) (bool, error)
}

// Operand is either a column reference or a literal value.
type Operand struct {
	IsColumn bool
	Col      ColumnRef
	Lit      Value
}

// ColOperand returns a column operand.
func ColOperand(ref ColumnRef) Operand { return Operand{IsColumn: true, Col: ref} }

// LitOperand returns a literal operand.
func LitOperand(v Value) Operand { return Operand{Lit: v} }

// String renders the operand canonically.
func (o Operand) String() string {
	if o.IsColumn {
		return o.Col.String()
	}
	return o.Lit.String()
}

func (o Operand) eval(b Binding) (Value, error) {
	if !o.IsColumn {
		return o.Lit, nil
	}
	v, ok := b.ColumnValue(o.Col)
	if !ok {
		return Value{}, fmt.Errorf("algebra: unbound column %s", o.Col)
	}
	return v, nil
}

// Comparison is an atomic predicate "left op right".
type Comparison struct {
	Left  Operand
	Op    CompareOp
	Right Operand
}

var _ Predicate = (*Comparison)(nil)

// Compare builds a column-vs-literal or column-vs-column comparison in a
// canonical orientation: a literal on the left is flipped to the right, and
// column-vs-column comparisons order the smaller column name first.
func Compare(left Operand, op CompareOp, right Operand) *Comparison {
	if !left.IsColumn && right.IsColumn {
		left, right = right, left
		op = op.flip()
	}
	if left.IsColumn && right.IsColumn && right.Col.String() < left.Col.String() {
		left, right = right, left
		op = op.flip()
	}
	return &Comparison{Left: left, Op: op, Right: right}
}

// Eq is shorthand for an equality comparison between a column and a literal.
func Eq(ref ColumnRef, v Value) *Comparison {
	return Compare(ColOperand(ref), OpEq, LitOperand(v))
}

// ColEq is shorthand for a column-equality (join) comparison.
func ColEq(a, b ColumnRef) *Comparison {
	return Compare(ColOperand(a), OpEq, ColOperand(b))
}

// String renders the comparison canonically, e.g. `Div.city = "LA"`.
func (c *Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Columns implements Predicate.
func (c *Comparison) Columns() []ColumnRef {
	var out []ColumnRef
	if c.Left.IsColumn {
		out = append(out, c.Left.Col)
	}
	if c.Right.IsColumn {
		out = append(out, c.Right.Col)
	}
	return canonicalRefs(out)
}

// Eval implements Predicate.
func (c *Comparison) Eval(b Binding) (bool, error) {
	lv, err := c.Left.eval(b)
	if err != nil {
		return false, err
	}
	rv, err := c.Right.eval(b)
	if err != nil {
		return false, err
	}
	cmp, err := lv.Compare(rv)
	if err != nil {
		return false, fmt.Errorf("algebra: evaluating %s: %w", c, err)
	}
	return c.Op.holds(cmp), nil
}

// And is a conjunction. Use NewAnd to obtain flattened, canonically ordered
// conjunctions.
type And struct {
	Preds []Predicate
}

var _ Predicate = (*And)(nil)

// NewAnd flattens nested conjunctions, deduplicates by canonical form, and
// sorts the conjuncts. A single-element conjunction collapses to the element
// itself; an empty conjunction returns nil (true).
func NewAnd(preds ...Predicate) Predicate {
	flat := flatten(preds, func(p Predicate) ([]Predicate, bool) {
		a, ok := p.(*And)
		if !ok {
			return nil, false
		}
		return a.Preds, true
	})
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return &And{Preds: flat}
	}
}

// String renders "(a AND b AND c)".
func (a *And) String() string { return joinPreds(a.Preds, " AND ") }

// Columns implements Predicate.
func (a *And) Columns() []ColumnRef { return unionColumns(a.Preds) }

// Eval implements Predicate.
func (a *And) Eval(b Binding) (bool, error) {
	for _, p := range a.Preds {
		ok, err := p.Eval(b)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Or is a disjunction. Use NewOr (or Disjoin) to obtain flattened,
// canonically ordered disjunctions. Disjunctions arise in MVPP push-down:
// when several queries share a scan, the pushed-down selection is the
// disjunction of their individual selections (paper §4.2, step 5).
type Or struct {
	Preds []Predicate
}

var _ Predicate = (*Or)(nil)

// NewOr flattens nested disjunctions, deduplicates, and sorts. A
// single-element disjunction collapses to the element; empty returns nil.
func NewOr(preds ...Predicate) Predicate {
	flat := flatten(preds, func(p Predicate) ([]Predicate, bool) {
		o, ok := p.(*Or)
		if !ok {
			return nil, false
		}
		return o.Preds, true
	})
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return &Or{Preds: flat}
	}
}

// Disjoin is NewOr over a slice, skipping nil predicates. A nil element
// means "no restriction" for that query, so the disjunction is vacuously
// true and Disjoin returns nil.
func Disjoin(preds []Predicate) Predicate {
	out := make([]Predicate, 0, len(preds))
	for _, p := range preds {
		if p == nil {
			return nil
		}
		out = append(out, p)
	}
	return NewOr(out...)
}

// String renders "(a OR b)".
func (o *Or) String() string { return joinPreds(o.Preds, " OR ") }

// Columns implements Predicate.
func (o *Or) Columns() []ColumnRef { return unionColumns(o.Preds) }

// Eval implements Predicate.
func (o *Or) Eval(b Binding) (bool, error) {
	for _, p := range o.Preds {
		ok, err := p.Eval(b)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Not negates a predicate.
type Not struct {
	Pred Predicate
}

var _ Predicate = (*Not)(nil)

// NewNot builds a negation, collapsing double negation.
func NewNot(p Predicate) Predicate {
	if n, ok := p.(*Not); ok {
		return n.Pred
	}
	return &Not{Pred: p}
}

// String renders "NOT (p)".
func (n *Not) String() string { return "NOT (" + n.Pred.String() + ")" }

// Columns implements Predicate.
func (n *Not) Columns() []ColumnRef { return n.Pred.Columns() }

// Eval implements Predicate.
func (n *Not) Eval(b Binding) (bool, error) {
	ok, err := n.Pred.Eval(b)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

// PredEqual reports semantic equality of two predicates via their canonical
// forms. Both nil means equal; one nil means unequal.
func PredEqual(a, b Predicate) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// Conjuncts splits a predicate into its top-level conjuncts. A nil predicate
// yields an empty slice.
func Conjuncts(p Predicate) []Predicate {
	switch v := p.(type) {
	case nil:
		return nil
	case *And:
		out := make([]Predicate, len(v.Preds))
		copy(out, v.Preds)
		return out
	default:
		return []Predicate{p}
	}
}

// flatten expands nested nodes of one connective, deduplicates by canonical
// string, and sorts.
func flatten(preds []Predicate, expand func(Predicate) ([]Predicate, bool)) []Predicate {
	var flat []Predicate
	var walk func(ps []Predicate)
	walk = func(ps []Predicate) {
		for _, p := range ps {
			if p == nil {
				continue
			}
			if sub, ok := expand(p); ok {
				walk(sub)
				continue
			}
			flat = append(flat, p)
		}
	}
	walk(preds)
	sort.Slice(flat, func(i, j int) bool { return flat[i].String() < flat[j].String() })
	out := flat[:0]
	var last string
	for i, p := range flat {
		s := p.String()
		if i == 0 || s != last {
			out = append(out, p)
		}
		last = s
	}
	return out
}

func joinPreds(preds []Predicate, sep string) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func unionColumns(preds []Predicate) []ColumnRef {
	var out []ColumnRef
	for _, p := range preds {
		out = append(out, p.Columns()...)
	}
	return canonicalRefs(out)
}

// canonicalRefs sorts and deduplicates column references.
func canonicalRefs(refs []ColumnRef) []ColumnRef {
	sort.Slice(refs, func(i, j int) bool { return refs[i].String() < refs[j].String() })
	out := refs[:0]
	var last string
	for i, r := range refs {
		s := r.String()
		if i == 0 || s != last {
			out = append(out, r)
		}
		last = s
	}
	return out
}
