package algebra

import (
	"fmt"
	"strings"
)

// Tuple is one row of a relation, paired with its schema so that predicates
// can resolve column references against it. Tuples implement Binding.
type Tuple struct {
	Schema *Schema
	Values []Value
}

var _ Binding = (*Tuple)(nil)

// NewTuple pairs values with a schema. The value count must match the
// schema width.
func NewTuple(schema *Schema, values []Value) (*Tuple, error) {
	if len(values) != schema.Len() {
		return nil, fmt.Errorf("algebra: tuple has %d values for %d columns", len(values), schema.Len())
	}
	return &Tuple{Schema: schema, Values: values}, nil
}

// ColumnValue implements Binding.
func (t *Tuple) ColumnValue(ref ColumnRef) (Value, bool) {
	i := t.Schema.IndexOf(ref)
	if i < 0 {
		return Value{}, false
	}
	return t.Values[i], true
}

// Project returns a new tuple restricted to the referenced columns.
func (t *Tuple) Project(refs []ColumnRef) (*Tuple, error) {
	schema, err := t.Schema.Project(refs)
	if err != nil {
		return nil, err
	}
	vals := make([]Value, len(refs))
	for i, r := range refs {
		idx := t.Schema.IndexOf(r)
		vals[i] = t.Values[idx]
	}
	return &Tuple{Schema: schema, Values: vals}, nil
}

// Concat returns the concatenation of two tuples (the join of one row from
// each side).
func (t *Tuple) Concat(o *Tuple) *Tuple {
	vals := make([]Value, 0, len(t.Values)+len(o.Values))
	vals = append(vals, t.Values...)
	vals = append(vals, o.Values...)
	return &Tuple{Schema: t.Schema.Concat(o.Schema), Values: vals}
}

// String renders the tuple as "(v1, v2, ...)".
func (t *Tuple) String() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key renders the tuple values as a comparable string key (used for
// set-semantics deduplication and result comparison in tests).
func (t *Tuple) Key() string { return t.String() }
