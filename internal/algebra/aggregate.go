package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// AggFunc is an aggregate function. Aggregation queries are the paper's
// first stated piece of future work ("we are working on materialized view
// design for more complicated queries such as query with aggregation
// functions"); this extension carries them through the whole stack —
// parsing, estimation, execution, and MVPP design — so summary tables can
// be materialized like any other vertex.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota + 1
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL spelling.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AGG(%d)", int(f))
	}
}

// Aggregation is one aggregate expression in an Aggregate node.
type Aggregation struct {
	Func AggFunc
	// Arg is the aggregated column; the zero ColumnRef means COUNT(*).
	Arg ColumnRef
	// Alias names the output column; must be unique within the node.
	Alias string
}

// String renders e.g. `SUM(Order.quantity) AS total`.
func (a Aggregation) String() string {
	arg := "*"
	if a.Arg != (ColumnRef{}) {
		arg = a.Arg.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.Alias)
}

// Aggregate groups its input and computes aggregate functions per group.
// An empty GroupBy produces a single global row.
type Aggregate struct {
	Input   Node
	GroupBy []ColumnRef
	Aggs    []Aggregation

	schema *Schema // lazily resolved
}

var _ Node = (*Aggregate)(nil)

// NewAggregate builds an aggregation node.
func NewAggregate(input Node, groupBy []ColumnRef, aggs []Aggregation) *Aggregate {
	g := make([]ColumnRef, len(groupBy))
	copy(g, groupBy)
	a := make([]Aggregation, len(aggs))
	copy(a, aggs)
	return &Aggregate{Input: input, GroupBy: g, Aggs: a}
}

// Schema implements Node: group columns (with their input identity)
// followed by one column per aggregate, unqualified and named by alias.
func (g *Aggregate) Schema() *Schema {
	if g.schema != nil {
		return g.schema
	}
	in := g.Input.Schema()
	cols := make([]Column, 0, len(g.GroupBy)+len(g.Aggs))
	for _, ref := range g.GroupBy {
		if i := in.IndexOf(ref); i >= 0 {
			cols = append(cols, in.Columns[i])
		}
	}
	for _, a := range g.Aggs {
		cols = append(cols, Column{Name: a.Alias, Type: g.aggType(a, in)})
	}
	g.schema = &Schema{Columns: cols}
	return g.schema
}

func (g *Aggregate) aggType(a Aggregation, in *Schema) Type {
	switch a.Func {
	case AggCount:
		return TypeInt
	case AggAvg:
		return TypeFloat
	default:
		if i := in.IndexOf(a.Arg); i >= 0 {
			return in.Columns[i].Type
		}
		return TypeFloat
	}
}

// Children implements Node.
func (g *Aggregate) Children() []Node { return []Node{g.Input} }

// Canonical implements Node.
func (g *Aggregate) Canonical() string {
	return "aggregate[" + g.spec() + "](" + g.Input.Canonical() + ")"
}

// spec renders group-by columns (sorted) and aggregations (sorted) — the
// identity for view sharing.
func (g *Aggregate) spec() string {
	groups := make([]string, len(g.GroupBy))
	for i, r := range g.GroupBy {
		groups[i] = r.String()
	}
	sort.Strings(groups)
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.String()
	}
	sort.Strings(aggs)
	return strings.Join(groups, ", ") + " | " + strings.Join(aggs, ", ")
}

// Label implements Node.
func (g *Aggregate) Label() string {
	var parts []string
	for _, a := range g.Aggs {
		parts = append(parts, a.String())
	}
	label := "γ " + strings.Join(parts, ", ")
	if len(g.GroupBy) > 0 {
		label += " BY " + refsString(g.GroupBy, false)
	}
	return label
}

// aggregateStructuralKey supports StructuralKey/SemanticKey for Aggregate.
func (g *Aggregate) structuralKey(inner string) string {
	return "aggregate[" + g.spec() + "](" + inner + ")"
}

// validateAggregate checks the node (called from Validate).
func validateAggregate(g *Aggregate) error {
	if err := Validate(g.Input); err != nil {
		return err
	}
	if len(g.Aggs) == 0 {
		return fmt.Errorf("algebra: aggregate with no aggregation functions")
	}
	in := g.Input.Schema()
	for _, ref := range g.GroupBy {
		if _, err := in.Resolve(ref); err != nil {
			return fmt.Errorf("algebra: GROUP BY: %w", err)
		}
	}
	seen := make(map[string]bool, len(g.Aggs))
	for _, a := range g.Aggs {
		if a.Alias == "" {
			return fmt.Errorf("algebra: aggregation %s(%s) has no alias", a.Func, a.Arg)
		}
		if seen[a.Alias] {
			return fmt.Errorf("algebra: duplicate aggregation alias %q", a.Alias)
		}
		seen[a.Alias] = true
		if a.Arg == (ColumnRef{}) {
			if a.Func != AggCount {
				return fmt.Errorf("algebra: %s requires an argument column", a.Func)
			}
			continue
		}
		i, err := in.Resolve(a.Arg)
		if err != nil {
			return fmt.Errorf("algebra: aggregation %s: %w", a.Func, err)
		}
		if a.Func != AggCount && a.Func != AggMin && a.Func != AggMax {
			switch in.Columns[i].Type {
			case TypeInt, TypeFloat:
			default:
				return fmt.Errorf("algebra: %s over non-numeric column %s", a.Func, a.Arg)
			}
		}
	}
	return nil
}

// RequiredByAggregate returns the input columns the node consumes.
func (g *Aggregate) RequiredByAggregate() []ColumnRef {
	out := make([]ColumnRef, 0, len(g.GroupBy)+len(g.Aggs))
	out = append(out, g.GroupBy...)
	for _, a := range g.Aggs {
		if a.Arg != (ColumnRef{}) {
			out = append(out, a.Arg)
		}
	}
	return canonicalRefs(out)
}
