package algebra

import (
	"testing"
)

// rewriteFixtures builds a handful of structurally diverse plans over the
// test schemas for idempotence/stability properties.
func rewriteFixtures() []Node {
	div := NewScan("Division", divisionSchema())
	pd := NewScan("Product", productSchema())
	ord := NewScan("Order", orderSchema())
	cust := NewScan("Customer", customerSchema())
	la := Eq(Ref("Division", "city"), StringVal("LA"))
	qty := Compare(ColOperand(Ref("Order", "quantity")), OpGt, LitOperand(IntVal(100)))
	pdDiv := []JoinCond{{Left: Ref("Product", "Did"), Right: Ref("Division", "Did")}}
	ordCust := []JoinCond{{Left: Ref("Order", "Cid"), Right: Ref("Customer", "Cid")}}

	return []Node{
		NewProject(NewJoin(pd, NewSelect(div, la), pdDiv), []ColumnRef{Ref("Product", "name")}),
		NewSelect(NewJoin(ord, cust, ordCust), NewAnd(qty, Eq(Ref("Customer", "city"), StringVal("SF")))),
		NewProject(
			NewSelect(NewJoin(NewJoin(pd, div, pdDiv), NewSelect(ord, qty),
				[]JoinCond{{Left: Ref("Product", "Pid"), Right: Ref("Order", "Pid")}}),
				la),
			[]ColumnRef{Ref("Product", "name"), Ref("Order", "date")}),
		NewAggregate(NewJoin(ord, cust, ordCust),
			[]ColumnRef{Ref("Customer", "city")},
			[]Aggregation{{Func: AggSum, Arg: Ref("Order", "quantity"), Alias: "total"}}),
		NewSelect(div, NewOr(la, Eq(Ref("Division", "city"), StringVal("SF")))),
	}
}

// Property: Normalize is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	for i, plan := range rewriteFixtures() {
		once := Normalize(Clone(plan))
		twice := Normalize(Clone(once))
		if once.Canonical() != twice.Canonical() {
			t.Errorf("fixture %d: Normalize not idempotent:\n%s\n%s", i, once.Canonical(), twice.Canonical())
		}
	}
}

// Property: PushDownSelections is idempotent and preserves validity and
// leaf sets.
func TestPushDownSelectionsIdempotent(t *testing.T) {
	for i, plan := range rewriteFixtures() {
		once := PushDownSelections(Clone(plan))
		twice := PushDownSelections(Clone(once))
		if once.Canonical() != twice.Canonical() {
			t.Errorf("fixture %d: push-down not idempotent", i)
		}
		if err := Validate(once); err != nil {
			t.Errorf("fixture %d: invalid after push-down: %v", i, err)
		}
		if got, want := len(Leaves(once)), len(Leaves(plan)); got != want {
			t.Errorf("fixture %d: leaves %d, want %d", i, got, want)
		}
	}
}

// Property: PruneColumns never widens any node's schema and keeps the plan
// valid.
func TestPruneColumnsShrinksOnly(t *testing.T) {
	for i, plan := range rewriteFixtures() {
		pruned := PruneColumns(Clone(plan), nil)
		if err := Validate(pruned); err != nil {
			t.Errorf("fixture %d: invalid after prune: %v", i, err)
			continue
		}
		if pruned.Schema().Len() != plan.Schema().Len() {
			t.Errorf("fixture %d: output schema changed: %d vs %d",
				i, pruned.Schema().Len(), plan.Schema().Len())
		}
	}
}

// Property: keys are stable under Clone and across repeated computation.
func TestKeysStableUnderClone(t *testing.T) {
	for i, plan := range rewriteFixtures() {
		cl := Clone(plan)
		if StructuralKey(plan) != StructuralKey(cl) {
			t.Errorf("fixture %d: structural key unstable under clone", i)
		}
		if SemanticKey(plan) != SemanticKey(cl) {
			t.Errorf("fixture %d: semantic key unstable under clone", i)
		}
		if plan.Canonical() != cl.Canonical() {
			t.Errorf("fixture %d: canonical unstable under clone", i)
		}
	}
}

// Property: StructuralKey refines SemanticKey — equal structural keys mean
// equal semantic keys.
func TestStructuralKeyRefinesSemanticKey(t *testing.T) {
	fixtures := rewriteFixtures()
	for i, a := range fixtures {
		for j, b := range fixtures {
			if StructuralKey(a) == StructuralKey(b) && SemanticKey(a) != SemanticKey(b) {
				t.Errorf("fixtures %d/%d: structural keys equal but semantic keys differ", i, j)
			}
		}
	}
}

// Property: Decompose→Compose→Decompose is stable (same selections, same
// leaf set, same output).
func TestDecomposeComposeStable(t *testing.T) {
	for i, plan := range rewriteFixtures() {
		d1, err := Decompose(Clone(plan))
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		d2, err := Decompose(d1.Compose())
		if err != nil {
			t.Fatalf("fixture %d: recompose: %v", i, err)
		}
		if len(d1.Selections) != len(d2.Selections) {
			t.Errorf("fixture %d: selections %d vs %d", i, len(d1.Selections), len(d2.Selections))
		}
		if SemanticKey(d1.JoinTree) != SemanticKey(d2.JoinTree) {
			t.Errorf("fixture %d: join tree drifted", i)
		}
		if (d1.TopAgg == nil) != (d2.TopAgg == nil) {
			t.Errorf("fixture %d: aggregation lost", i)
		}
	}
}
