package algebra

import (
	"strings"
	"testing"
)

func productSchema() *Schema {
	return NewSchema(
		Column{Relation: "Product", Name: "Pid", Type: TypeInt},
		Column{Relation: "Product", Name: "name", Type: TypeString},
		Column{Relation: "Product", Name: "Did", Type: TypeInt},
	)
}

func divisionSchema() *Schema {
	return NewSchema(
		Column{Relation: "Division", Name: "Did", Type: TypeInt},
		Column{Relation: "Division", Name: "name", Type: TypeString},
		Column{Relation: "Division", Name: "city", Type: TypeString},
	)
}

func TestSchemaIndexOf(t *testing.T) {
	s := productSchema()
	tests := []struct {
		ref  ColumnRef
		want int
	}{
		{Ref("Product", "Pid"), 0},
		{Ref("Product", "name"), 1},
		{Ref("", "Did"), 2},
		{Ref("Product", "missing"), -1},
		{Ref("Division", "Pid"), -1},
	}
	for _, tt := range tests {
		if got := s.IndexOf(tt.ref); got != tt.want {
			t.Errorf("IndexOf(%s) = %d, want %d", tt.ref, got, tt.want)
		}
	}
}

func TestSchemaResolveAmbiguity(t *testing.T) {
	joined := productSchema().Concat(divisionSchema())
	// "name" appears in both Product and Division.
	if _, err := joined.Resolve(Ref("", "name")); err == nil {
		t.Error("unqualified ambiguous reference should fail to resolve")
	}
	i, err := joined.Resolve(Ref("Division", "name"))
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if joined.Columns[i].Relation != "Division" {
		t.Errorf("resolved to %s", joined.Columns[i].QualifiedName())
	}
	if _, err := joined.Resolve(Ref("Order", "name")); err == nil {
		t.Error("unknown relation should fail to resolve")
	}
}

func TestSchemaConcat(t *testing.T) {
	a, b := productSchema(), divisionSchema()
	j := a.Concat(b)
	if j.Len() != a.Len()+b.Len() {
		t.Fatalf("joined width = %d", j.Len())
	}
	if j.Columns[0] != a.Columns[0] || j.Columns[a.Len()] != b.Columns[0] {
		t.Error("concat order wrong")
	}
	// Concat must not alias the input slices.
	j.Columns[0].Name = "mutated"
	if a.Columns[0].Name == "mutated" {
		t.Error("Concat aliases input schema")
	}
}

func TestSchemaProject(t *testing.T) {
	s := productSchema()
	p, err := s.Project([]ColumnRef{Ref("Product", "name"), Ref("", "Pid")})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Len() != 2 || p.Columns[0].Name != "name" || p.Columns[1].Name != "Pid" {
		t.Errorf("projected schema = %s", p)
	}
	if _, err := s.Project([]ColumnRef{Ref("", "nope")}); err == nil {
		t.Error("projecting a missing column should fail")
	}
}

func TestSchemaRelations(t *testing.T) {
	j := divisionSchema().Concat(productSchema())
	rels := j.Relations()
	if len(rels) != 2 || rels[0] != "Division" || rels[1] != "Product" {
		t.Errorf("Relations() = %v", rels)
	}
}

func TestSchemaStringAndEqual(t *testing.T) {
	s := productSchema()
	if !strings.Contains(s.String(), "Product.Pid int") {
		t.Errorf("String() = %s", s)
	}
	if !s.Equal(productSchema()) {
		t.Error("identical schemas should be Equal")
	}
	if s.Equal(divisionSchema()) {
		t.Error("different schemas should not be Equal")
	}
	if s.Equal(NewSchema(s.Columns[:2]...)) {
		t.Error("prefix schema should not be Equal")
	}
}

func TestColumnRefMatches(t *testing.T) {
	c := Column{Relation: "Order", Name: "date", Type: TypeDate}
	if !Ref("Order", "date").Matches(c) {
		t.Error("qualified match failed")
	}
	if !Ref("", "date").Matches(c) {
		t.Error("unqualified match failed")
	}
	if Ref("Customer", "date").Matches(c) {
		t.Error("wrong relation matched")
	}
	if Ref("Order", "quantity").Matches(c) {
		t.Error("wrong name matched")
	}
}

func TestColumnQualifiedName(t *testing.T) {
	if got := (Column{Relation: "R", Name: "a"}).QualifiedName(); got != "R.a" {
		t.Errorf("QualifiedName = %q", got)
	}
	if got := (Column{Name: "a"}).QualifiedName(); got != "a" {
		t.Errorf("QualifiedName = %q", got)
	}
}
