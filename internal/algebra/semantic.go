package algebra

import (
	"sort"
	"strings"
)

// SemanticKey returns an order-insensitive identity for the relation
// computed by a plan subtree. Two subtrees with equal semantic keys compute
// the same relation (up to column order), which is exactly the paper's
// common-subexpression condition "S(u) = S(v) and R(u) = R(v)" (§3.1).
//
// Normalizations applied on top of Canonical:
//   - join commutativity and associativity: a chain of joins flattens to the
//     multiset of its non-join inputs plus the set of its conditions;
//   - selection commutativity: stacked selections merge into one sorted
//     conjunct set;
//   - projection column order is ignored (as in Canonical).
func SemanticKey(n Node) string {
	switch v := n.(type) {
	case *Scan:
		return v.Canonical()
	case *Select:
		var preds []string
		cur := Node(v)
		for {
			s, ok := cur.(*Select)
			if !ok {
				break
			}
			for _, c := range Conjuncts(s.Pred) {
				preds = append(preds, c.String())
			}
			cur = s.Input
		}
		sort.Strings(preds)
		preds = dedupeStrings(preds)
		return "select[" + strings.Join(preds, " AND ") + "](" + SemanticKey(cur) + ")"
	case *Project:
		return "project[" + refsString(v.Cols, true) + "](" + SemanticKey(v.Input) + ")"
	case *Join:
		inputs, conds := flattenJoin(v)
		sort.Strings(inputs)
		sort.Strings(conds)
		conds = dedupeStrings(conds)
		return "join{" + strings.Join(conds, " AND ") + "}(" + strings.Join(inputs, ", ") + ")"
	case *Aggregate:
		return v.structuralKey(SemanticKey(v.Input))
	default:
		return n.Canonical()
	}
}

// flattenJoin decomposes a join tree into the semantic keys of its non-join
// inputs and the canonical strings of all its conditions.
func flattenJoin(j *Join) (inputs, conds []string) {
	for _, c := range j.On {
		conds = append(conds, c.CanonicalString())
	}
	for _, child := range []Node{j.Left, j.Right} {
		if cj, ok := child.(*Join); ok {
			ci, cc := flattenJoin(cj)
			inputs = append(inputs, ci...)
			conds = append(conds, cc...)
			continue
		}
		inputs = append(inputs, SemanticKey(child))
	}
	return inputs, conds
}

// StructuralKey returns a vertex identity for MVPP construction: like
// SemanticKey it ignores join commutativity (A⋈B = B⋈A), conjunct order
// within one selection, and projection column order — but unlike
// SemanticKey it preserves join associativity/grouping and selection
// stacking. (A⋈B)⋈C and A⋈(B⋈C) compute the same relation, yet they expose
// different intermediate results for sharing, and the MVPP generation
// algorithm explores exactly that choice; likewise σp(σs(X)) keeps σs(X) as
// a distinct shareable vertex while σ(p∧s)(X) does not.
func StructuralKey(n Node) string {
	switch v := n.(type) {
	case *Scan:
		return v.Canonical()
	case *Select:
		var preds []string
		for _, c := range Conjuncts(v.Pred) {
			preds = append(preds, c.String())
		}
		sort.Strings(preds)
		preds = dedupeStrings(preds)
		return "select[" + strings.Join(preds, " AND ") + "](" + StructuralKey(v.Input) + ")"
	case *Project:
		return "project[" + refsString(v.Cols, true) + "](" + StructuralKey(v.Input) + ")"
	case *Join:
		l, r := StructuralKey(v.Left), StructuralKey(v.Right)
		if r < l {
			l, r = r, l
		}
		return "join[" + v.condString() + "](" + l + ", " + r + ")"
	case *Aggregate:
		return v.structuralKey(StructuralKey(v.Input))
	default:
		return n.Canonical()
	}
}

func dedupeStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
