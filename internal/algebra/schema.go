package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation: the relation (or alias) it
// belongs to, its name, and its type.
type Column struct {
	Relation string
	Name     string
	Type     Type
}

// QualifiedName returns "relation.name", or just the name when the column is
// unqualified.
func (c Column) QualifiedName() string {
	if c.Relation == "" {
		return c.Name
	}
	return c.Relation + "." + c.Name
}

// ColumnRef names a column, optionally qualified by relation. References are
// resolved against a Schema.
type ColumnRef struct {
	Relation string
	Name     string
}

// String returns the qualified form of the reference.
func (r ColumnRef) String() string {
	if r.Relation == "" {
		return r.Name
	}
	return r.Relation + "." + r.Name
}

// Ref is a convenience constructor: Ref("Product", "Pid").
func Ref(relation, name string) ColumnRef { return ColumnRef{Relation: relation, Name: name} }

// Matches reports whether the reference resolves to the column: names must
// match, and the relation must match unless the reference is unqualified.
func (r ColumnRef) Matches(c Column) bool {
	return r.Name == c.Name && (r.Relation == "" || r.Relation == c.Relation)
}

// Schema is an ordered list of columns. Schemas are immutable once built;
// all transformations return new schemas.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema over the given columns, copying the slice.
func NewSchema(cols ...Column) *Schema {
	cp := make([]Column, len(cols))
	copy(cp, cols)
	return &Schema{Columns: cp}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// IndexOf resolves a reference to a column position, or -1 when absent. An
// ambiguous unqualified reference (same name in two relations) resolves to
// the first match, mirroring SQL engines that require qualification only on
// actual ambiguity; Resolve reports ambiguity as an error.
func (s *Schema) IndexOf(ref ColumnRef) int {
	for i, c := range s.Columns {
		if ref.Matches(c) {
			return i
		}
	}
	return -1
}

// Resolve resolves a reference, failing when it is missing or ambiguous.
func (s *Schema) Resolve(ref ColumnRef) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !ref.Matches(c) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("algebra: ambiguous column reference %s", ref)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("algebra: unknown column %s", ref)
	}
	return found, nil
}

// Has reports whether the reference resolves against the schema.
func (s *Schema) Has(ref ColumnRef) bool { return s.IndexOf(ref) >= 0 }

// Concat returns the schema of a join: this schema's columns followed by the
// other's.
func (s *Schema) Concat(o *Schema) *Schema {
	out := make([]Column, 0, len(s.Columns)+len(o.Columns))
	out = append(out, s.Columns...)
	out = append(out, o.Columns...)
	return &Schema{Columns: out}
}

// Project returns the schema restricted to the referenced columns, in
// reference order.
func (s *Schema) Project(refs []ColumnRef) (*Schema, error) {
	out := make([]Column, 0, len(refs))
	for _, r := range refs {
		i, err := s.Resolve(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s.Columns[i])
	}
	return &Schema{Columns: out}, nil
}

// Relations returns the sorted set of relation names appearing in the
// schema.
func (s *Schema) Relations() []string {
	seen := make(map[string]bool, 4)
	var out []string
	for _, c := range s.Columns {
		if c.Relation != "" && !seen[c.Relation] {
			seen[c.Relation] = true
			out = append(out, c.Relation)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the schema as "(rel.col type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports structural equality of two schemas.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}
