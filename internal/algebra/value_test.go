package algebra

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Type
		str  string
	}{
		{"int", IntVal(42), TypeInt, "42"},
		{"negative int", IntVal(-7), TypeInt, "-7"},
		{"float", FloatVal(2.5), TypeFloat, "2.5"},
		{"string", StringVal("LA"), TypeString, `"LA"`},
		{"date epoch", DateVal(0), TypeDate, "1970-01-01"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind != tt.kind {
				t.Errorf("kind = %v, want %v", tt.v.Kind, tt.kind)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
			if !tt.v.IsValid() {
				t.Error("IsValid() = false, want true")
			}
		})
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if v.String() != "<invalid>" {
		t.Errorf("String() = %q", v.String())
	}
}

func TestParseDate(t *testing.T) {
	tests := []struct {
		in      string
		want    string // round-trip String()
		wantErr bool
	}{
		{"1996-07-01", "1996-07-01", false},
		{"7/1/96", "1996-07-01", false},
		{"7/1/1996", "1996-07-01", false},
		{"12/31/99", "1999-12-31", false},
		{"not-a-date", "", true},
		{"", "", true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			v, err := ParseDate(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseDate(%q) succeeded, want error", tt.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseDate(%q): %v", tt.in, err)
			}
			if v.Kind != TypeDate {
				t.Errorf("kind = %v, want date", v.Kind)
			}
			if got := v.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Value
		want    int
		wantErr bool
	}{
		{"int lt", IntVal(1), IntVal(2), -1, false},
		{"int eq", IntVal(5), IntVal(5), 0, false},
		{"int gt", IntVal(9), IntVal(2), 1, false},
		{"float vs int", FloatVal(1.5), IntVal(2), -1, false},
		{"int vs float", IntVal(3), FloatVal(2.5), 1, false},
		{"date order", DateVal(9678), DateVal(9679), -1, false},
		{"date vs int numeric", DateVal(10), IntVal(10), 0, false},
		{"string lt", StringVal("LA"), StringVal("SF"), -1, false},
		{"string eq", StringVal("LA"), StringVal("LA"), 0, false},
		{"string gt", StringVal("SF"), StringVal("LA"), 1, false},
		{"string vs int error", StringVal("1"), IntVal(1), 0, true},
		{"int vs string error", IntVal(1), StringVal("1"), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Compare(tt.b)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Compare succeeded with %d, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Compare: %v", err)
			}
			if got != tt.want {
				t.Errorf("Compare = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestValueEqual(t *testing.T) {
	if !IntVal(3).Equal(FloatVal(3)) {
		t.Error("3 should equal 3.0 numerically")
	}
	if IntVal(3).Equal(StringVal("3")) {
		t.Error("int and string must not be equal")
	}
	if !StringVal("x").Equal(StringVal("x")) {
		t.Error("identical strings should be equal")
	}
}

// Property: Compare is antisymmetric for ints.
func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := IntVal(a).Compare(IntVal(b))
		y, err2 := IntVal(b).Compare(IntVal(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive-consistent for string triples (if a<b and
// b<c then a<c).
func TestValueCompareTransitiveStrings(t *testing.T) {
	f := func(a, b, c string) bool {
		ab, _ := StringVal(a).Compare(StringVal(b))
		bc, _ := StringVal(b).Compare(StringVal(c))
		ac, _ := StringVal(a).Compare(StringVal(c))
		if ab < 0 && bc < 0 {
			return ac < 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareFloatsTotal(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN ordering unspecified; engine never produces NaN
		}
		c, err := FloatVal(a).Compare(FloatVal(b))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
