// Package algebra defines the relational algebra used throughout the
// materialized-view design framework: column types and values, schemas,
// predicates (selection and join conditions), and logical plan nodes
// (Scan, Select, Project, Join).
//
// The package is deliberately self-contained: it knows nothing about
// statistics, costs, or execution. Canonical string forms produced here are
// the basis for common-subexpression detection in the MVPP layer, and value
// evaluation here is the basis for the executing engine.
package algebra

import (
	"fmt"
	"strconv"
	"time"
)

// Type identifies the domain of a column or value.
type Type int

// Supported column types. Dates are stored as days since the Unix epoch so
// that range predicates (e.g. the paper's "date > 7/1/96") reduce to integer
// comparison.
const (
	TypeInt Type = iota + 1
	TypeFloat
	TypeString
	TypeDate
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeDate:
		return "date"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Value is a dynamically typed scalar. The zero Value is invalid; construct
// values with IntVal, FloatVal, StringVal or DateVal.
type Value struct {
	Kind  Type
	Int   int64 // TypeInt and TypeDate payload
	Float float64
	Str   string
}

// IntVal returns an integer value.
func IntVal(v int64) Value { return Value{Kind: TypeInt, Int: v} }

// FloatVal returns a floating-point value.
func FloatVal(v float64) Value { return Value{Kind: TypeFloat, Float: v} }

// StringVal returns a string value.
func StringVal(v string) Value { return Value{Kind: TypeString, Str: v} }

// DateVal returns a date value from days since the Unix epoch.
func DateVal(epochDays int64) Value { return Value{Kind: TypeDate, Int: epochDays} }

// ParseDate parses "YYYY-MM-DD" or the paper's "M/D/YY" form into a date
// value.
func ParseDate(s string) (Value, error) {
	for _, layout := range []string{"2006-01-02", "1/2/06", "1/2/2006"} {
		t, err := time.Parse(layout, s)
		if err == nil {
			return DateVal(t.Unix() / 86400), nil
		}
	}
	return Value{}, fmt.Errorf("algebra: cannot parse date %q", s)
}

// IsValid reports whether the value was constructed with a known type.
func (v Value) IsValid() bool {
	switch v.Kind {
	case TypeInt, TypeFloat, TypeString, TypeDate:
		return true
	default:
		return false
	}
}

// String renders the value in its canonical literal form. Strings are
// quoted; dates render as YYYY-MM-DD.
func (v Value) String() string {
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeString:
		return strconv.Quote(v.Str)
	case TypeDate:
		return time.Unix(v.Int*86400, 0).UTC().Format("2006-01-02")
	default:
		return "<invalid>"
	}
}

// numeric reports whether the value can participate in numeric comparison
// and returns its float64 image.
func (v Value) numeric() (float64, bool) {
	switch v.Kind {
	case TypeInt, TypeDate:
		return float64(v.Int), true
	case TypeFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o. Values of
// different kinds compare numerically when both are numeric (int, float,
// date); otherwise comparison is an error.
func (v Value) Compare(o Value) (int, error) {
	if v.Kind == TypeString || o.Kind == TypeString {
		if v.Kind != TypeString || o.Kind != TypeString {
			return 0, fmt.Errorf("algebra: cannot compare %s with %s", v.Kind, o.Kind)
		}
		switch {
		case v.Str < o.Str:
			return -1, nil
		case v.Str > o.Str:
			return 1, nil
		default:
			return 0, nil
		}
	}
	a, okA := v.numeric()
	b, okB := o.numeric()
	if !okA || !okB {
		return 0, fmt.Errorf("algebra: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch {
	case a < b:
		return -1, nil
	case a > b:
		return 1, nil
	default:
		return 0, nil
	}
}

// Equal reports whether two values compare equal. Comparison errors (type
// mismatch involving strings) report false.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}
