package algebra

import (
	"testing"
	"testing/quick"
)

func cmpInt(col string, op CompareOp, v int64) *Comparison {
	return Compare(ColOperand(Ref("R", col)), op, LitOperand(IntVal(v)))
}

func cmpStr(col string, op CompareOp, v string) *Comparison {
	return Compare(ColOperand(Ref("R", col)), op, LitOperand(StringVal(v)))
}

func TestImpliesBasics(t *testing.T) {
	tests := []struct {
		name string
		p, q Predicate
		want bool
	}{
		{"anything implies nil", cmpInt("x", OpEq, 1), nil, true},
		{"nil implies nothing", nil, cmpInt("x", OpEq, 1), false},
		{"self", cmpInt("x", OpGt, 5), cmpInt("x", OpGt, 5), true},
		{"eq implies range", cmpInt("x", OpEq, 10), cmpInt("x", OpGt, 5), true},
		{"eq implies le", cmpInt("x", OpEq, 10), cmpInt("x", OpLe, 10), true},
		{"eq fails range", cmpInt("x", OpEq, 3), cmpInt("x", OpGt, 5), false},
		{"eq implies noteq", cmpInt("x", OpEq, 10), cmpInt("x", OpNotEq, 3), true},
		{"tighter gt", cmpInt("x", OpGt, 10), cmpInt("x", OpGt, 5), true},
		{"looser gt fails", cmpInt("x", OpGt, 5), cmpInt("x", OpGt, 10), false},
		{"gt implies ge same bound", cmpInt("x", OpGt, 5), cmpInt("x", OpGe, 5), true},
		{"ge does not imply gt same bound", cmpInt("x", OpGe, 5), cmpInt("x", OpGt, 5), false},
		{"lt implies le", cmpInt("x", OpLt, 5), cmpInt("x", OpLe, 5), true},
		{"le fails lt", cmpInt("x", OpLe, 5), cmpInt("x", OpLt, 5), false},
		{"interval excludes noteq", cmpInt("x", OpGt, 10), cmpInt("x", OpNotEq, 3), true},
		{"interval cannot prove eq", cmpInt("x", OpGt, 10), cmpInt("x", OpEq, 11), false},
		{"different columns fail", cmpInt("x", OpGt, 10), cmpInt("y", OpGt, 5), false},
		{"string eq", cmpStr("city", OpEq, "LA"), cmpStr("city", OpNotEq, "SF"), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Implies(tt.p, tt.q); got != tt.want {
				t.Errorf("Implies(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestImpliesConjunctionsAndDisjunctions(t *testing.T) {
	la := cmpStr("city", OpEq, "LA")
	sf := cmpStr("city", OpEq, "SF")
	big := cmpInt("q", OpGt, 100)
	huge := cmpInt("q", OpGt, 1000)

	// p ⇒ each conjunct of q.
	if !Implies(NewAnd(la, huge), NewAnd(la, big)) {
		t.Error("conjunction strengthening failed")
	}
	if Implies(NewAnd(la, big), NewAnd(la, huge)) {
		t.Error("weaker conjunction should not imply stronger")
	}
	// p ⇒ a ∨ b when p ⇒ a — the Figure-8 shared-filter case.
	if !Implies(la, NewOr(la, sf)) {
		t.Error("disjunct introduction failed")
	}
	if Implies(NewOr(la, sf), la) {
		t.Error("disjunction should not imply one disjunct")
	}
	// (a ∨ b) ⇒ (a ∨ b ∨ c): every disjunct of p implies q.
	re := cmpStr("city", OpEq, "Re")
	if !Implies(NewOr(la, sf), NewOr(la, sf, re)) {
		t.Error("disjunction widening failed")
	}
	// interval conjunction: 5 < x ≤ 7 ⇒ x > 4 and x < 10.
	p := NewAnd(cmpInt("x", OpGt, 5), cmpInt("x", OpLe, 7))
	if !Implies(p, cmpInt("x", OpGt, 4)) || !Implies(p, cmpInt("x", OpLt, 10)) {
		t.Error("interval reasoning failed")
	}
	if Implies(p, cmpInt("x", OpGt, 6)) {
		t.Error("x>5 should not prove x>6")
	}
}

// Property: Implies is consistent with evaluation — whenever Implies(p, q)
// holds, every integer satisfying p satisfies q.
func TestImpliesSoundProperty(t *testing.T) {
	schema := NewSchema(Column{Relation: "R", Name: "x", Type: TypeInt})
	ops := []CompareOp{OpEq, OpNotEq, OpLt, OpLe, OpGt, OpGe}
	f := func(op1Raw, op2Raw uint8, b1, b2 int8, sample int8) bool {
		p := cmpInt("x", ops[int(op1Raw)%len(ops)], int64(b1))
		q := cmpInt("x", ops[int(op2Raw)%len(ops)], int64(b2))
		if !Implies(p, q) {
			return true // nothing claimed
		}
		tup := &Tuple{Schema: schema, Values: []Value{IntVal(int64(sample))}}
		pv, err1 := p.Eval(tup)
		qv, err2 := q.Eval(tup)
		if err1 != nil || err2 != nil {
			return false
		}
		return !pv || qv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: soundness for conjunction pairs over two columns.
func TestImpliesSoundConjunctionsProperty(t *testing.T) {
	schema := NewSchema(
		Column{Relation: "R", Name: "x", Type: TypeInt},
		Column{Relation: "R", Name: "y", Type: TypeInt},
	)
	ops := []CompareOp{OpLt, OpLe, OpGt, OpGe, OpEq}
	f := func(o1, o2, o3 uint8, b1, b2, b3 int8, sx, sy int8) bool {
		p := NewAnd(
			cmpInt("x", ops[int(o1)%len(ops)], int64(b1)),
			cmpInt("y", ops[int(o2)%len(ops)], int64(b2)),
		)
		q := cmpInt("x", ops[int(o3)%len(ops)], int64(b3))
		if !Implies(p, q) {
			return true
		}
		tup := &Tuple{Schema: schema, Values: []Value{IntVal(int64(sx)), IntVal(int64(sy))}}
		pv, err1 := p.Eval(tup)
		qv, err2 := q.Eval(tup)
		if err1 != nil || err2 != nil {
			return false
		}
		return !pv || qv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
