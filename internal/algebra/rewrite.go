package algebra

import (
	"fmt"
)

// Decomposed is the "pushed-up" normal form of an SPJ plan used by the
// multiple-MVPP generation algorithm (paper Figure 4, step 2): a pure join
// skeleton over base-relation scans, with every selection conjunct and the
// final projection hoisted out. In this form two queries' join patterns can
// be compared and merged directly.
type Decomposed struct {
	// JoinTree contains only Join and Scan nodes, preserving the join order
	// of the source plan.
	JoinTree Node
	// Selections holds every selection conjunct from the plan.
	Selections []Predicate
	// Output is the final projection of the plan; nil means all columns.
	Output []ColumnRef
	// TopAgg records a top-level aggregation (GROUP BY + aggregate
	// functions), re-applied by Compose above the selections; nil for pure
	// SPJ plans.
	TopAgg *Aggregate
}

// Decompose splits an SPJ plan into its pushed-up normal form. The plan must
// be a tree of Scan/Select/Project/Join nodes; intermediate projections are
// discarded (they are recomputed by push-down), and all selections are
// collected as conjuncts.
func Decompose(n Node) (*Decomposed, error) {
	d := &Decomposed{}
	top := true
	var strip func(Node) (Node, error)
	strip = func(m Node) (Node, error) {
		switch v := m.(type) {
		case *Scan:
			top = false
			return v, nil
		case *Select:
			top = false
			d.Selections = append(d.Selections, Conjuncts(v.Pred)...)
			return strip(v.Input)
		case *Project:
			if top && d.Output == nil {
				cp := make([]ColumnRef, len(v.Cols))
				copy(cp, v.Cols)
				d.Output = cp
			}
			top = false
			return strip(v.Input)
		case *Join:
			top = false
			l, err := strip(v.Left)
			if err != nil {
				return nil, err
			}
			r, err := strip(v.Right)
			if err != nil {
				return nil, err
			}
			return NewJoin(l, r, v.On), nil
		case *Aggregate:
			if !top || d.TopAgg != nil {
				return nil, fmt.Errorf("algebra: aggregation below the plan root cannot be decomposed")
			}
			top = false
			d.TopAgg = v
			inner, err := strip(v.Input)
			if err != nil {
				return nil, err
			}
			top = false
			return inner, nil
		default:
			return nil, fmt.Errorf("algebra: cannot decompose node type %T", m)
		}
	}
	jt, err := strip(n)
	if err != nil {
		return nil, err
	}
	d.JoinTree = jt
	return d, nil
}

// Compose rebuilds a plan from the decomposition in select-on-top form: the
// join skeleton, then one conjunctive selection, then the top aggregation
// (if any) or the final projection. This is the shape Figure 4 step 2
// produces before merging.
func (d *Decomposed) Compose() Node {
	n := d.JoinTree
	if pred := NewAnd(d.Selections...); pred != nil {
		n = NewSelect(n, pred)
	}
	if d.TopAgg != nil {
		return NewAggregate(n, d.TopAgg.GroupBy, d.TopAgg.Aggs)
	}
	if d.Output != nil {
		n = NewProject(n, d.Output)
	}
	return n
}

// PushDownSelections returns an equivalent plan with every selection
// conjunct pushed to the lowest node whose schema resolves all its columns.
// Conjuncts referencing both sides of a join remain above the join;
// single-relation conjuncts (including disjunctions over one relation) land
// directly above the scan.
func PushDownSelections(n Node) Node {
	return pushSel(n, nil)
}

func pushSel(n Node, preds []Predicate) Node {
	switch v := n.(type) {
	case *Scan:
		return wrapSelect(v, preds)
	case *Select:
		return pushSel(v.Input, append(preds, Conjuncts(v.Pred)...))
	case *Project:
		// Every pushed predicate resolves against the projection's output,
		// hence also against its input, so the swap is always legal.
		return NewProject(pushSel(v.Input, preds), v.Cols)
	case *Aggregate:
		// Predicates above an aggregation reference its outputs (groups or
		// aggregate results) and cannot move below it.
		agg := NewAggregate(pushSel(v.Input, nil), v.GroupBy, v.Aggs)
		return wrapSelect(agg, preds)
	case *Join:
		ls, rs := v.Left.Schema(), v.Right.Schema()
		var leftP, rightP, here []Predicate
		for _, p := range preds {
			switch {
			case resolvesAll(ls, p):
				leftP = append(leftP, p)
			case resolvesAll(rs, p):
				rightP = append(rightP, p)
			default:
				here = append(here, p)
			}
		}
		j := NewJoin(pushSel(v.Left, leftP), pushSel(v.Right, rightP), v.On)
		return wrapSelect(j, here)
	default:
		return wrapSelect(n, preds)
	}
}

func wrapSelect(n Node, preds []Predicate) Node {
	if p := NewAnd(preds...); p != nil {
		return NewSelect(n, p)
	}
	return n
}

func resolvesAll(s *Schema, p Predicate) bool {
	for _, ref := range p.Columns() {
		if !s.Has(ref) {
			return false
		}
	}
	return true
}

// PruneColumns returns an equivalent plan that projects away unused columns
// as early as possible: above each scan, the plan keeps only the columns
// required by selections, join conditions, and the final output (paper
// Figure 4 step 6: "the union of the projection attributes ... plus the join
// attributes"). required lists the columns needed from n by its consumers;
// nil means every column is needed.
func PruneColumns(n Node, required []ColumnRef) Node {
	switch v := n.(type) {
	case *Scan:
		if required == nil || len(required) == v.Rel.Len() {
			return v
		}
		return NewProject(v, orderBySchema(v.Rel, required))
	case *Select:
		// A selection directly over a scan stays on the scan (the shape the
		// paper's optimized MVPPs have); the projection goes above it and
		// keeps only what consumers need — the predicate's own columns are
		// consumed by the selection itself.
		if sc, ok := v.Input.(*Scan); ok {
			sel := NewSelect(sc, v.Pred)
			if required == nil || len(required) >= sc.Rel.Len() {
				return sel
			}
			return NewProject(sel, orderBySchema(sc.Rel, required))
		}
		need := addRefs(required, v.Pred.Columns())
		return NewSelect(PruneColumns(v.Input, need), v.Pred)
	case *Project:
		cols := v.Cols
		if required != nil {
			cols = intersectRefs(v.Cols, required, v.Input.Schema())
		}
		inner := PruneColumns(v.Input, cols)
		// The recursive call may already narrow to exactly these columns;
		// drop the now-redundant projection in that case.
		if inner.Schema().Len() == len(cols) {
			match := true
			for i, ref := range cols {
				if !ref.Matches(inner.Schema().Columns[i]) {
					match = false
					break
				}
			}
			if match {
				return inner
			}
		}
		return NewProject(inner, cols)
	case *Aggregate:
		// The aggregation consumes exactly its group and argument columns;
		// what the consumer needs from the aggregate's output is fixed.
		return NewAggregate(PruneColumns(v.Input, v.RequiredByAggregate()), v.GroupBy, v.Aggs)
	case *Join:
		condRefs := make([]ColumnRef, 0, 2*len(v.On))
		for _, c := range v.On {
			condRefs = append(condRefs, c.Left, c.Right)
		}
		need := addRefs(required, condRefs)
		ls, rs := v.Left.Schema(), v.Right.Schema()
		var leftNeed, rightNeed []ColumnRef
		if need == nil {
			leftNeed, rightNeed = nil, nil
		} else {
			for _, r := range need {
				if ls.Has(r) {
					leftNeed = append(leftNeed, r)
				}
				if rs.Has(r) {
					rightNeed = append(rightNeed, r)
				}
			}
			leftNeed = canonicalRefs(leftNeed)
			rightNeed = canonicalRefs(rightNeed)
		}
		return NewJoin(PruneColumns(v.Left, leftNeed), PruneColumns(v.Right, rightNeed), v.On)
	default:
		return n
	}
}

// addRefs unions required with extra; nil required stays nil (everything).
func addRefs(required, extra []ColumnRef) []ColumnRef {
	if required == nil {
		return nil
	}
	out := make([]ColumnRef, 0, len(required)+len(extra))
	out = append(out, required...)
	out = append(out, extra...)
	return canonicalRefs(out)
}

// intersectRefs keeps the refs of cols that appear in required, resolving
// both against schema so that qualified and unqualified spellings match.
func intersectRefs(cols, required []ColumnRef, schema *Schema) []ColumnRef {
	want := make(map[int]bool, len(required))
	for _, r := range required {
		if i := schema.IndexOf(r); i >= 0 {
			want[i] = true
		}
	}
	var out []ColumnRef
	for _, c := range cols {
		if i := schema.IndexOf(c); i >= 0 && want[i] {
			out = append(out, c)
		}
	}
	return out
}

// orderBySchema orders refs by their column position in schema, producing a
// stable projection order for canonical comparison.
func orderBySchema(schema *Schema, refs []ColumnRef) []ColumnRef {
	idx := make([]int, 0, len(refs))
	seen := make(map[int]bool, len(refs))
	for _, r := range refs {
		if i := schema.IndexOf(r); i >= 0 && !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]ColumnRef, len(idx))
	for i, k := range idx {
		c := schema.Columns[k]
		out[i] = ColumnRef{Relation: c.Relation, Name: c.Name}
	}
	return out
}

// Normalize applies the standard cleanup pass used after rewrites: merges
// stacked selections, collapses stacked projections, and removes projections
// that keep every column in order.
func Normalize(n Node) Node {
	return Transform(n, func(m Node) Node {
		switch v := m.(type) {
		case *Select:
			if inner, ok := v.Input.(*Select); ok {
				return NewSelect(inner.Input, NewAnd(v.Pred, inner.Pred))
			}
			return v
		case *Project:
			if inner, ok := v.Input.(*Project); ok {
				return NewProject(inner.Input, v.Cols)
			}
			in := v.Input.Schema()
			if len(v.Cols) == in.Len() {
				identity := true
				for i, ref := range v.Cols {
					if !ref.Matches(in.Columns[i]) {
						identity = false
						break
					}
				}
				if identity {
					return v.Input
				}
			}
			return v
		default:
			return v
		}
	})
}
