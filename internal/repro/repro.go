// Package repro regenerates every table and figure of the paper's
// evaluation: Table 1 (statistics), Table 2 (strategy costs), Figure 2
// (common-subexpression merge), Figure 3 (the annotated MVPP), Figure 5
// (individual optimal plans), Figure 6 (rotation MVPPs), Figures 7–8
// (pre/post push-down optimization), and the Figure 9 selection trace.
// cmd/paperrepro prints these; the root benchmarks time them; and
// EXPERIMENTS.md records the paper-vs-measured comparison they produce.
package repro

import (
	"fmt"
	"strings"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/paper"
	"github.com/warehousekit/mvpp/internal/sqlparse"
	"github.com/warehousekit/mvpp/internal/viz"
)

// Experiment is one regenerated artifact.
type Experiment struct {
	ID    string // "table1", "fig3", ...
	Title string
	Text  string // rendered reproduction
}

// Model returns the paper's cost model.
func Model() cost.Model { return &cost.PaperModel{} }

// Figure3 builds the canonical paper MVPP (Figure 3's structure, paper-mode
// size estimation).
func Figure3() (*core.MVPP, cost.Model, error) {
	ex, err := paper.Load()
	if err != nil {
		return nil, nil, err
	}
	plans, err := paper.Figure3Plans(ex.Catalog)
	if err != nil {
		return nil, nil, err
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := Model()
	b := core.NewBuilder(est, model)
	for _, s := range plans {
		if err := b.AddQuery(s.Name, s.Freq, s.Plan); err != nil {
			return nil, nil, err
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, model, nil
}

// Table1 renders the paper's Table 1 from the catalog.
func Table1() (string, error) {
	if _, err := paper.NewCatalog(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-36s %12s %12s   %s\n", "relation", "records", "blocks", "s / js"))
	for _, row := range paper.Table1 {
		b.WriteString(fmt.Sprintf("%-36s %12s %12s   %s\n",
			row.Relation, viz.FormatCost(row.Rows), viz.FormatCost(row.Blocks), row.Selectivity))
	}
	return b.String(), nil
}

// Table2Reference holds the paper's printed Table 2 for side-by-side
// comparison (query cost, maintenance cost, total — in block accesses).
var Table2Reference = []struct {
	Strategy                  string
	Views                     []string // our vertex names; nil = all virtual
	Query, Maintenance, Total float64
}{
	{"Pd, Div, Pt, Ord, Cust (all virtual)", nil, 95.671e6, 0, 95.671e6},
	{"tmp2, tmp4, tmp6", []string{"tmp2", "tmp4", "tmp6"}, 85.237e6, 12.583e6, 97.82e6},
	{"tmp2, tmp6", []string{"tmp2", "tmp6"}, 25.506e6, 12.382e6, 37.888e6},
	{"tmp2, tmp4", []string{"tmp2", "tmp4"}, 25.512e6, 12.065e6, 37.577e6},
	{"Q1, Q2, Q3, Q4", []string{"result1", "result2", "result3", "result4"}, 7.25e3, 62.653e6, 62.66e6},
}

// Table2 evaluates the paper's five strategies on the Figure 3 MVPP and
// appends the heuristic's and the exhaustive optimum's rows.
func Table2() (string, []viz.CostRow, error) {
	m, model, err := Figure3()
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-38s %30s   %30s\n", "", "measured (this reproduction)", "paper"))
	b.WriteString(fmt.Sprintf("%-38s %9s %10s %9s   %9s %10s %9s\n",
		"materialized views", "query", "maint", "total", "query", "maint", "total"))
	var rows []viz.CostRow
	for _, ref := range Table2Reference {
		var c core.Costs
		if ref.Views == nil {
			c = m.AllVirtual(model)
		} else {
			c, err = m.EvaluateNames(model, ref.Views)
			if err != nil {
				return "", nil, err
			}
		}
		rows = append(rows, viz.CostRow{Strategy: ref.Strategy, Costs: c})
		b.WriteString(fmt.Sprintf("%-38s %9s %10s %9s   %9s %10s %9s\n",
			ref.Strategy,
			viz.FormatCost(c.Query), viz.FormatCost(c.Maintenance), viz.FormatCost(c.Total),
			viz.FormatCost(ref.Query), viz.FormatCost(ref.Maintenance), viz.FormatCost(ref.Total)))
	}

	heur := m.SelectViews(model, core.SelectOptions{})
	rows = append(rows, viz.CostRow{Strategy: "heuristic (Figure 9)", Costs: heur.Costs})
	b.WriteString(fmt.Sprintf("%-38s %9s %10s %9s   %30s\n",
		"heuristic: "+strings.Join(heur.Materialized.Names(m), ", "),
		viz.FormatCost(heur.Costs.Query), viz.FormatCost(heur.Costs.Maintenance), viz.FormatCost(heur.Costs.Total),
		"(paper: tmp2, tmp4)"))

	opt, err := m.ExhaustiveOptimal(model)
	if err != nil {
		return "", nil, err
	}
	rows = append(rows, viz.CostRow{Strategy: "exhaustive optimum", Costs: opt.Costs})
	b.WriteString(fmt.Sprintf("%-38s %9s %10s %9s\n",
		"optimum: "+strings.Join(opt.Materialized.Names(m), ", "),
		viz.FormatCost(opt.Costs.Query), viz.FormatCost(opt.Costs.Maintenance), viz.FormatCost(opt.Costs.Total)))
	return b.String(), rows, nil
}

// Figure2 shows Q1 and Q2's individual plans and their merge on the common
// subexpression (the paper's motivating example).
func Figure2() (string, error) {
	ex, err := paper.Load()
	if err != nil {
		return "", err
	}
	plans, err := paper.Figure3Plans(ex.Catalog)
	if err != nil {
		return "", err
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := Model()
	b := core.NewBuilder(est, model)
	for _, s := range plans[:2] { // Q1 and Q2 only
		if err := b.AddQuery(s.Name, s.Freq, s.Plan); err != nil {
			return "", err
		}
	}
	m, err := b.Build()
	if err != nil {
		return "", err
	}
	var out strings.Builder
	out.WriteString("(a) individual query plans\n\n")
	for _, s := range plans[:2] {
		out.WriteString(s.Name + ":\n")
		out.WriteString(viz.PlanASCII(s.Plan))
		out.WriteString("\n")
	}
	out.WriteString("(b) merged on the common subexpression (tmp1, tmp2 shared):\n\n")
	out.WriteString(viz.MVPPASCII(m, nil))
	return out.String(), nil
}

// Figure5 prints each query's individually optimal plan, found by the
// single-query optimizer.
func Figure5() (string, error) {
	ex, err := paper.Load()
	if err != nil {
		return "", err
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := Model()
	opt := optimizer.New(est, model, optimizer.Options{})
	var b strings.Builder
	for _, q := range ex.Queries {
		plan, ca, err := opt.Optimize(q)
		if err != nil {
			return "", err
		}
		fq := ex.Frequencies[q.Name]
		b.WriteString(fmt.Sprintf("%s (fq=%g, Ca=%s, fq·Ca=%s):\n",
			q.Name, fq, viz.FormatCost(ca), viz.FormatCost(fq*ca)))
		b.WriteString(viz.PlanASCII(plan))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Figure3Text renders the annotated MVPP (ASCII table plus DOT).
func Figure3Text() (string, error) {
	m, model, err := Figure3()
	if err != nil {
		return "", err
	}
	res := m.SelectViews(model, core.SelectOptions{})
	var b strings.Builder
	b.WriteString(viz.MVPPASCII(m, res.Materialized))
	b.WriteString("\nDOT:\n")
	b.WriteString(viz.MVPPDOT(m, res.Materialized))
	return b.String(), nil
}

// Figure6 generates the rotation MVPPs of Figure 4's algorithm and
// summarizes each candidate.
func Figure6() (string, []*core.Candidate, error) {
	ex, err := paper.Load()
	if err != nil {
		return "", nil, err
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := Model()
	opt := optimizer.New(est, model, optimizer.Options{})
	var plans []core.QueryPlan
	for _, q := range ex.Queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			return "", nil, err
		}
		plans = append(plans, core.QueryPlan{Name: q.Name, Freq: ex.Frequencies[q.Name], Plan: p})
	}
	cands, err := core.Generate(est, model, plans, core.GenOptions{})
	if err != nil {
		return "", nil, err
	}
	best := core.Best(cands)
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%d distinct MVPPs from %d rotations:\n\n", len(cands), len(plans)))
	for i, c := range cands {
		marker := " "
		if c == best {
			marker = "*"
		}
		b.WriteString(fmt.Sprintf("%s MVPP(%d): seed order %s — %d vertices, design total %s, M = {%s}\n",
			marker, i+1, strings.Join(c.SeedOrder, " > "),
			len(c.MVPP.Vertices),
			viz.FormatCost(c.Selection.Costs.Total),
			strings.Join(c.Selection.Materialized.Names(c.MVPP), ", ")))
	}
	b.WriteString("\nbest candidate's DAG:\n")
	b.WriteString(viz.MVPPASCII(best.MVPP, best.Selection.Materialized))
	return b.String(), cands, nil
}

// figure7Queries are the variant queries of the paper's Figures 5/7, where
// Q2 filters Division.name = "Re" and Q3 filters city = "SF", so the three
// queries restrict Division differently and step 5's disjunctive push-down
// applies.
var figure7Queries = map[string]string{
	"Q1": `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`,
	"Q2": `SELECT Part.name FROM Product, Part, Division WHERE Division.name = 'Re' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`,
	"Q3": `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'SF' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`,
	"Q4": `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`,
}

// Figure7Plans optimizes the Figure 7 variant queries into per-query plans
// and returns them with the estimator and model they were priced under, so
// callers (Figure7and8, the golden design test) generate candidates from
// the identical workload.
func Figure7Plans() ([]core.QueryPlan, *cost.Estimator, cost.Model, error) {
	ex, err := paper.Load()
	if err != nil {
		return nil, nil, nil, err
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := Model()
	opt := optimizer.New(est, model, optimizer.Options{})
	var plans []core.QueryPlan
	for _, name := range paper.QueryOrder {
		q, err := sqlparse.BindQuery(ex.Catalog, name, figure7Queries[name])
		if err != nil {
			return nil, nil, nil, err
		}
		p, _, err := opt.Optimize(q)
		if err != nil {
			return nil, nil, nil, err
		}
		plans = append(plans, core.QueryPlan{Name: name, Freq: ex.Frequencies[name], Plan: p})
	}
	return plans, est, model, nil
}

// Figure7and8 contrasts the merged MVPP before push-down (Figure 7:
// selections above the joins) with the optimized MVPP after pushing the
// disjunction of the selections onto the shared Division scan (Figure 8).
func Figure7and8() (string, error) {
	plans, est, model, err := Figure7Plans()
	if err != nil {
		return "", err
	}
	before, err := core.Generate(est, model, plans, core.GenOptions{NoPushdown: true, MaxRotations: 1})
	if err != nil {
		return "", err
	}
	after, err := core.Generate(est, model, plans, core.GenOptions{PushDisjunctions: true, PushProjections: true, MaxRotations: 1})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 7 — merged MVPP before optimization (selections above joins):\n\n")
	b.WriteString(viz.MVPPASCII(before[0].MVPP, nil))
	b.WriteString("\nFigure 8 — after pushing selections (disjunction on Division) and projections down:\n\n")
	b.WriteString(viz.MVPPASCII(after[0].MVPP, nil))
	b.WriteString(fmt.Sprintf("\ndesign totals: before %s, after %s\n",
		viz.FormatCost(before[0].Selection.Costs.Total),
		viz.FormatCost(after[0].Selection.Costs.Total)))
	return b.String(), nil
}

// Figure9Trace replays the selection heuristic on the Figure 3 MVPP.
func Figure9Trace() (string, error) {
	m, model, err := Figure3()
	if err != nil {
		return "", err
	}
	res := m.SelectViews(model, core.SelectOptions{})
	var b strings.Builder
	b.WriteString(viz.TraceASCII(res.Trace))
	b.WriteString(fmt.Sprintf("\nM = {%s}   (paper: {tmp2, tmp4})\n",
		strings.Join(res.Materialized.Names(m), ", ")))
	b.WriteString(fmt.Sprintf("total cost = %s\n", viz.FormatCost(res.Costs.Total)))
	return b.String(), nil
}

// All regenerates every artifact in paper order. o (which may be nil)
// receives one span per artifact.
func All(o obs.Observer) ([]Experiment, error) {
	var out []Experiment
	add := func(id, title string, f func() (string, error)) error {
		sp := obs.Start(o, "repro.artifact", obs.String("artifact", id))
		text, err := f()
		obs.End(sp)
		if err != nil {
			return fmt.Errorf("repro %s: %w", id, err)
		}
		out = append(out, Experiment{ID: id, Title: title, Text: text})
		return nil
	}
	steps := []struct {
		id, title string
		f         func() (string, error)
	}{
		{"table1", "Table 1 — sizes of relations and statistical data", Table1},
		{"fig2", "Figure 2 — individual query plans and their merge", Figure2},
		{"fig3", "Figure 3 — the MVPP for the example, cost-annotated", Figure3Text},
		{"fig5", "Figure 5 — individual optimal query plans", Figure5},
		{"fig6", "Figure 6 — multiple MVPPs from rotation merging", func() (string, error) {
			s, _, err := Figure6()
			return s, err
		}},
		{"fig7-8", "Figures 7–8 — MVPP before and after push-down optimization", Figure7and8},
		{"table2", "Table 2 — costs of materialization strategies", func() (string, error) {
			s, _, err := Table2()
			return s, err
		}},
		{"fig9", "Figure 9 (trace) — the selection heuristic's run", Figure9Trace},
	}
	for _, s := range steps {
		if err := add(s.id, s.title, s.f); err != nil {
			return nil, err
		}
	}
	return out, nil
}
