package repro_test

import (
	"math"
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/repro"
)

func TestTable1(t *testing.T) {
	out, err := repro.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Product", "30k", "3k", "Order⋈Customer", "25k", "s = 0.02"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 10 { // header + 9 rows
		t.Errorf("Table1 lines = %d", got)
	}
}

func TestTable2ReproducesShape(t *testing.T) {
	out, rows, err := repro.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // 5 paper strategies + heuristic + optimum
		t.Fatalf("rows = %d", len(rows))
	}
	byStrategy := map[string]int{}
	for i, r := range rows {
		byStrategy[r.Strategy] = i
	}
	virtual := rows[0].Costs
	mixed := rows[3].Costs   // tmp2, tmp4
	allMat := rows[4].Costs  // Q1..Q4
	optimum := rows[6].Costs // exhaustive
	heuristic := rows[5].Costs

	// Paper's qualitative claims.
	if virtual.Maintenance != 0 {
		t.Error("all-virtual has maintenance cost")
	}
	if !(allMat.Query < mixed.Query && mixed.Query < virtual.Query) {
		t.Errorf("query ordering: allMat %v, mixed %v, virtual %v", allMat.Query, mixed.Query, virtual.Query)
	}
	if !(mixed.Total < virtual.Total && mixed.Total < allMat.Total) {
		t.Errorf("{tmp2,tmp4} should win: mixed %v, virtual %v, allMat %v", mixed.Total, virtual.Total, allMat.Total)
	}
	// The optimum can only improve on the heuristic; both beat the listed
	// strategies or tie {tmp2,tmp4}.
	if optimum.Total > heuristic.Total+1e-6 {
		t.Errorf("optimum %v worse than heuristic %v", optimum.Total, heuristic.Total)
	}
	if optimum.Total > mixed.Total+1e-6 {
		t.Errorf("optimum %v worse than {tmp2,tmp4} %v", optimum.Total, mixed.Total)
	}
	// Quantitative proximity to the paper for the headline rows.
	for _, check := range []struct {
		name            string
		got, paper, tol float64
	}{
		{"all-virtual total", virtual.Total, 95.671e6, 0.15},
		{"{tmp2,tmp4} total", mixed.Total, 37.577e6, 0.35},
		{"{tmp2,tmp4} maintenance", mixed.Maintenance, 12.065e6, 0.05},
	} {
		if rel := math.Abs(check.got-check.paper) / check.paper; rel > check.tol {
			t.Errorf("%s = %v, paper %v (off %.0f%% > %.0f%%)",
				check.name, check.got, check.paper, rel*100, check.tol*100)
		}
	}
	if !strings.Contains(out, "paper") || !strings.Contains(out, "heuristic") {
		t.Errorf("Table2 text malformed:\n%s", out)
	}
}

// TestTable2RowSwapFinding documents a reproduction finding: the paper's
// Table 2 prints query cost 85.237m for {tmp2,tmp4,tmp6} and 25.506m for
// {tmp2,tmp6}, which is impossible under its own model (materializing MORE
// views cannot raise query cost). Our measured values land within ~2% of
// the paper's numbers *crosswise*, showing the two query-cost cells were
// swapped in the paper.
func TestTable2RowSwapFinding(t *testing.T) {
	_, rows, err := repro.Table2()
	if err != nil {
		t.Fatal(err)
	}
	withTmp4 := rows[1].Costs.Query    // {tmp2,tmp4,tmp6}
	withoutTmp4 := rows[2].Costs.Query // {tmp2,tmp6}
	// Superset of views ⇒ query cost can only drop.
	if withTmp4 > withoutTmp4 {
		t.Errorf("monotonicity violated in OUR model: %v > %v", withTmp4, withoutTmp4)
	}
	// Crosswise match with the paper's (swapped) cells.
	if rel := math.Abs(withTmp4-25.506e6) / 25.506e6; rel > 0.05 {
		t.Errorf("{tmp2,tmp4,tmp6} query = %v, want ≈ paper's 25.506m cell (off %.1f%%)", withTmp4, rel*100)
	}
	if rel := math.Abs(withoutTmp4-85.237e6) / 85.237e6; rel > 0.05 {
		t.Errorf("{tmp2,tmp6} query = %v, want ≈ paper's 85.237m cell (off %.1f%%)", withoutTmp4, rel*100)
	}
}

func TestFigure2(t *testing.T) {
	out, err := repro.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"individual query plans", "merged", "tmp1", "tmp2", "Q1,Q2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q", want)
		}
	}
}

func TestFigure3Text(t *testing.T) {
	out, err := repro.Figure3Text()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tmp2", "35.25k", "digraph mvpp", "result4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q", want)
		}
	}
}

func TestFigure5(t *testing.T) {
	out, err := repro.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Q1 (fq=10", "Q4 (fq=5", "fq·Ca", "⋈"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6(t *testing.T) {
	out, cands, err := repro.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if !strings.Contains(out, "MVPP(1)") || !strings.Contains(out, "seed order") {
		t.Errorf("Figure6 malformed:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("best candidate not marked")
	}
}

func TestFigure7and8(t *testing.T) {
	out, err := repro.Figure7and8()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "Figure 8") {
		t.Fatalf("sections missing:\n%s", out)
	}
	// Figure 8 must contain a disjunctive selection on Division.
	fig8 := out[strings.Index(out, "Figure 8"):]
	if !strings.Contains(fig8, "OR") {
		t.Errorf("Figure 8 lacks the disjunctive Division filter:\n%s", fig8)
	}
}

func TestFigure9Trace(t *testing.T) {
	out, err := repro.Figure9Trace()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tmp4", "materialize", "reject", "M = {", "tmp2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure9Trace missing %q:\n%s", want, out)
		}
	}
}

func TestAll(t *testing.T) {
	exps, err := repro.All(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 8 {
		t.Fatalf("experiments = %d, want 8", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.Text == "" {
			t.Errorf("%s: empty text", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig2", "fig3", "fig5", "fig6", "fig7-8", "fig9"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}
