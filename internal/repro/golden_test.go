package repro_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/repro"
)

var update = flag.Bool("update", false, "rewrite the golden design files")

// goldenCosts pins one strategy's §4.1 breakdown.
type goldenCosts struct {
	Query       float64 `json:"query"`
	Maintenance float64 `json:"maintenance"`
	Total       float64 `json:"total"`
}

// goldenCandidate pins one generated MVPP candidate.
type goldenCandidate struct {
	SeedOrder    []string    `json:"seedOrder"`
	Vertices     []string    `json:"vertices"`
	Materialized []string    `json:"materialized"`
	Costs        goldenCosts `json:"costs"`
}

// goldenDesign is the full pinned artifact: the Figure 7/8 workload's
// candidate set and the Figure 9 heuristic's choice on the Figure 3 MVPP.
type goldenDesign struct {
	Candidates []goldenCandidate `json:"candidates"`
	Figure9    struct {
		Materialized []string    `json:"materialized"`
		Costs        goldenCosts `json:"costs"`
	} `json:"figure9"`
}

func costsOf(c core.Costs) goldenCosts {
	return goldenCosts{Query: c.Query, Maintenance: c.Maintenance, Total: c.Total}
}

// TestDesignGolden pins the designer's end-to-end numeric output: the
// candidate MVPPs generated for the Figure 7/8 workload (with push-down
// optimization on) and the Figure 9 selection on the canonical Figure 3
// MVPP. Any change to plan enumeration, cost estimation, or selection
// shows up as a diff against testdata/design_golden.json; rerun with
// `go test ./internal/repro -run DesignGolden -update` to accept it.
func TestDesignGolden(t *testing.T) {
	plans, est, model, err := repro.Figure7Plans()
	if err != nil {
		t.Fatal(err)
	}
	cands, err := core.Generate(est, model, plans, core.GenOptions{
		PushDisjunctions: true, PushProjections: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var got goldenDesign
	for _, c := range cands {
		var names []string
		for _, v := range c.MVPP.Vertices {
			names = append(names, v.Name)
		}
		got.Candidates = append(got.Candidates, goldenCandidate{
			SeedOrder:    c.SeedOrder,
			Vertices:     names,
			Materialized: c.Selection.Materialized.Names(c.MVPP),
			Costs:        costsOf(c.Selection.Costs),
		})
	}

	m, model3, err := repro.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	res := m.SelectViews(model3, core.SelectOptions{})
	got.Figure9.Materialized = res.Materialized.Names(m)
	got.Figure9.Costs = costsOf(res.Costs)

	raw, err := json.MarshalIndent(&got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	path := filepath.Join("testdata", "design_golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(raw, want) {
		t.Errorf("design output diverged from %s\n got: %s\nwant: %s\n(rerun with -update to accept)",
			path, raw, want)
	}
}
