package mvpp_test

import (
	"bytes"
	"io"
	"log/slog"
	"strings"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// TestDesignTrace runs the paper workload with a trace recorder attached
// and checks the recorded span tree, events, and counters cover the whole
// pipeline: optimize → generate → select → evaluate, plus the engine when
// the design is simulated.
func TestDesignTrace(t *testing.T) {
	rec := mvpp.NewTraceRecorder(nil)
	d := paperDesigner(t, mvpp.Options{Observer: rec})
	design, err := d.Design()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 11}); err != nil {
		t.Fatal(err)
	}

	tr := rec.Trace()
	for _, span := range []string{
		"design", "optimize", "optimize.query", "generate", "rotation",
		"select", "evaluate", "simulate",
	} {
		if tr.FindSpan(span) == nil {
			t.Errorf("trace is missing span %q", span)
		}
	}
	root := tr.FindSpan("design")
	if root == nil {
		t.Fatal("no design span")
	}
	if root.Attrs["queries"] != float64(4) && root.Attrs["queries"] != int64(4) {
		t.Errorf("design span queries attr = %v", root.Attrs["queries"])
	}
	if _, ok := root.Attrs["total"]; !ok {
		t.Error("design span missing final total annotation")
	}

	// One plan-chosen event per query, with costs attached.
	plans := tr.EventsOfKind(mvpp.EvPlanChosen)
	if len(plans) != 4 {
		t.Errorf("EvPlanChosen events = %d, want 4", len(plans))
	}

	// Per-candidate cost events from the generator.
	cands := tr.EventsOfKind(mvpp.EvCandidate)
	if len(cands) == 0 {
		t.Fatal("no EvCandidate events")
	}
	for _, ev := range cands {
		for _, key := range []string{"query_cost", "maintenance_cost", "total"} {
			if _, ok := ev.Attrs[key]; !ok {
				t.Errorf("EvCandidate missing attr %q: %v", key, ev.Attrs)
			}
		}
	}

	// Figure 9 per-step events with vertex and action.
	steps := tr.EventsOfKind(mvpp.EvSelectStep)
	if len(steps) == 0 {
		t.Fatal("no EvSelectStep events")
	}
	for _, ev := range steps {
		if ev.Attrs["vertex"] == "" || ev.Attrs["action"] == "" {
			t.Errorf("EvSelectStep missing vertex/action: %v", ev.Attrs)
		}
	}

	// Engine operator stats from the simulation.
	if len(tr.EventsOfKind(mvpp.EvEngineOp)) == 0 {
		t.Error("no EvEngineOp events from Simulate")
	}
	if len(tr.EventsOfKind(mvpp.EvCosts)) != 1 {
		t.Errorf("EvCosts events = %d, want 1", len(tr.EventsOfKind(mvpp.EvCosts)))
	}

	for _, ctr := range []string{
		mvpp.CtrPlansEnumerated, mvpp.CtrEstimatorCalls, mvpp.CtrMemoHits,
		mvpp.CtrMergeAttempts, mvpp.CtrCandidates, mvpp.CtrGreedyIterations,
		mvpp.CtrEvaluateCalls, mvpp.CtrEngineBlockReads, mvpp.CtrEngineBlockWrites,
	} {
		if tr.Counters[ctr] <= 0 {
			t.Errorf("counter %s = %d, want > 0", ctr, tr.Counters[ctr])
		}
	}

	// The whole trace must survive a JSON round trip through the public
	// surface.
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := mvpp.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.FindSpan("rotation") == nil {
		t.Error("round-tripped trace lost the rotation spans")
	}
	if got, want := len(back.EventsOfKind(mvpp.EvSelectStep)), len(steps); got != want {
		t.Errorf("round-tripped select.step events = %d, want %d", got, want)
	}
	if back.Counters[mvpp.CtrCandidates] != tr.Counters[mvpp.CtrCandidates] {
		t.Error("round-tripped counters differ")
	}
}

// TestObserverDoesNotChangeDesign: instrumentation must be purely passive —
// the same workload designs to the same views and totals with and without
// an observer.
func TestObserverDoesNotChangeDesign(t *testing.T) {
	plain, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	observed, err := paperDesigner(t, mvpp.Options{Observer: mvpp.NewTraceRecorder(nil)}).Design()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Costs().TotalCost != observed.Costs().TotalCost {
		t.Errorf("observer changed the total: %g vs %g",
			plain.Costs().TotalCost, observed.Costs().TotalCost)
	}
	a, b := plain.Views(), observed.Views()
	if len(a) != len(b) {
		t.Fatalf("observer changed the view count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Errorf("observer changed view %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
}

// TestLogObserverOnDesign smoke-tests the slog backend against a real run.
func TestLogObserverOnDesign(t *testing.T) {
	var buf bytes.Buffer
	logger := newTestLogger(&buf)
	d := paperDesigner(t, mvpp.Options{Observer: mvpp.NewLogObserver(logger, nil)})
	if _, err := d.Design(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"span=design", "span=design/optimize", "span start", "span end"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q", want)
		}
	}
}

// TestAddQueryChecksDuplicateBeforeParse: a duplicate name must be
// reported as such even when the new SQL is garbage, proving the duplicate
// check runs before the (cached) parse-and-bind.
func TestAddQueryChecksDuplicateBeforeParse(t *testing.T) {
	d := paperDesigner(t, mvpp.Options{})
	err := d.AddQuery("Q1", `THIS IS NOT SQL AT ALL`, 1)
	if err == nil {
		t.Fatal("duplicate AddQuery succeeded")
	}
	if !strings.Contains(err.Error(), "duplicate query name") {
		t.Errorf("duplicate name reported as %q, want a duplicate-name error", err)
	}
	// A rejected query must not leave partial state behind.
	if got := len(d.Queries()); got != 4 {
		t.Errorf("workload size after rejected AddQuery = %d, want 4", got)
	}
	if _, err := d.Design(); err != nil {
		t.Errorf("design after rejected AddQuery failed: %v", err)
	}
}

// TestNoObserverOverheadGuard prices the disabled instrumentation path:
// with Options.Observer nil, Design() must not be slower than the observed
// run (the nil path does strictly less work), and the committed
// BENCH_design.json baseline lets CI compare absolute ns/op across
// revisions (threshold: 2%).
func TestNoObserverOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing comparison is noise under the race detector's instrumentation")
	}
	nilRun := testing.Benchmark(BenchmarkDesignEndToEnd)
	observedRun := testing.Benchmark(BenchmarkDesignObserved)
	nilNs := float64(nilRun.NsPerOp())
	obsNs := float64(observedRun.NsPerOp())
	t.Logf("end-to-end design ns/op: nil observer %.0f, trace recorder %.0f", nilNs, obsNs)
	// Generous noise margin: the disabled path may not cost more than 10%
	// over the fully-instrumented one; in practice it is faster.
	if nilNs > obsNs*1.10 {
		t.Errorf("nil-observer design (%.0f ns/op) slower than observed design (%.0f ns/op)", nilNs, obsNs)
	}
}
