package mvpp_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/telemetry"
)

func telemetryGet(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body
}

// parseCounters extracts the counter samples ("name value") from an
// exposition body.
func parseCounters(body []byte) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
			out[name] = v
		}
	}
	return out
}

// TestTelemetryUnderLoad hammers queries and delta injection from many
// goroutines while concurrently scraping /metrics and /healthz, asserting
// every scrape stays well-formed and the query counter is monotonic.
// Run with -race: this is the concurrent gauge/histogram mutation test.
func TestTelemetryUnderLoad(t *testing.T) {
	_, srv := paperServer(t, mvpp.ServeOptions{
		TelemetryAddr:    "127.0.0.1:0",
		TraceSampleEvery: 1,
		DeltaBatch:       1 << 20,
	})
	defer srv.Close()
	addr := srv.TelemetryAddr()
	if addr == "" {
		t.Fatal("telemetry enabled but no address bound")
	}

	const workers, perWorker, scrapes = 4, 30, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"Q1", "Q2", "Q3", "Q4"}
			for i := 0; i < perWorker; i++ {
				if _, err := srv.Query(context.Background(), names[(w+i)%len(names)]); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.InjectDeltas(0.05); err != nil {
			t.Errorf("inject: %v", err)
			return
		}
		if err := srv.Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
	}()

	var lastQueries float64
	for i := 0; i < scrapes; i++ {
		code, body := telemetryGet(t, addr, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		if _, err := telemetry.ValidateExposition(body); err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
		q := parseCounters(body)["mvpp_serve_queries_total"]
		if q < lastQueries {
			t.Fatalf("queries counter went backwards: %g -> %g", lastQueries, q)
		}
		lastQueries = q

		code, hbody := telemetryGet(t, addr, "/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz status %d: %s", code, hbody)
		}
	}
	wg.Wait()

	// Final scrape reflects all the traffic.
	_, body := telemetryGet(t, addr, "/metrics")
	if q := parseCounters(body)["mvpp_serve_queries_total"]; q < workers*perWorker {
		t.Errorf("final queries counter %g, want >= %d", q, workers*perWorker)
	}
	st := srv.Stats()
	if st.WindowQueries < workers*perWorker {
		t.Errorf("WindowQueries = %d, want >= %d", st.WindowQueries, workers*perWorker)
	}
}

// TestTelemetryTraceCorrelation asserts the acceptance criterion: /traces
// returns a sampled query's full chain — admission, cache or engine
// execution, reply — under one query ID, and the same ID tags every stage.
func TestTelemetryTraceCorrelation(t *testing.T) {
	_, srv := paperServer(t, mvpp.ServeOptions{
		TelemetryAddr:    "127.0.0.1:0",
		TraceSampleEvery: 1,
	})
	defer srv.Close()

	if _, err := srv.Query(context.Background(), "Q1"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Query(context.Background(), "Q1"); err != nil { // cache hit
		t.Fatal(err)
	}

	code, body := telemetryGet(t, srv.TelemetryAddr(), "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var out struct {
		Traces []mvpp.QueryTrace `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 2 {
		t.Fatalf("got %d traces, want 2: %s", len(out.Traces), body)
	}

	miss, hit := out.Traces[0], out.Traces[1]
	if miss.ID == hit.ID {
		t.Fatalf("distinct queries share ID %d", miss.ID)
	}
	stageNames := func(tr mvpp.QueryTrace) string {
		var s []string
		for _, st := range tr.Stages {
			s = append(s, st.Stage)
		}
		return strings.Join(s, ",")
	}
	if got := stageNames(miss); got != "admit,cache_miss,execute,reply" {
		t.Errorf("miss chain = %s, want admit,cache_miss,execute,reply", got)
	}
	if got := stageNames(hit); got != "admit,cache_hit,reply" {
		t.Errorf("hit chain = %s, want admit,cache_hit,reply", got)
	}
	if !miss.Done || !hit.Done {
		t.Error("traces not marked done after reply")
	}
}

// TestTelemetryOff asserts the nil-off contract: without TelemetryAddr no
// listener exists and no traces are sampled.
func TestTelemetryOff(t *testing.T) {
	_, srv := paperServer(t, mvpp.ServeOptions{})
	defer srv.Close()
	if addr := srv.TelemetryAddr(); addr != "" {
		t.Errorf("TelemetryAddr = %q, want empty", addr)
	}
	if _, err := srv.Query(context.Background(), "Q1"); err != nil {
		t.Fatal(err)
	}
	if traces := srv.RecentTraces(); traces != nil {
		t.Errorf("RecentTraces = %v, want nil with telemetry off", traces)
	}
}

// TestTelemetryClosedHealth asserts the shutdown bugfix: after Close, the
// telemetry listener is down (idempotently) and a pre-close scrape of a
// closing server would have seen "closed", not a hang.
func TestTelemetryClosedHealth(t *testing.T) {
	_, srv := paperServer(t, mvpp.ServeOptions{TelemetryAddr: "127.0.0.1:0"})
	addr := srv.TelemetryAddr()
	if code, _ := telemetryGet(t, addr, "/healthz"); code != http.StatusOK {
		t.Fatalf("pre-close /healthz status %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("telemetry listener still answering after Close")
	}
}
