package mvpp_test

import (
	"strings"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// skewedDesigner builds a workload engineered to beat the Figure 9 greedy
// heuristic: three cheap-to-store aggregates over one expensive unfiltered
// join, with base updates frequent enough that each view is unprofitable
// on its own (the greedy Cs test charges every view a full from-base
// recompute) while materializing all three query results together is
// profitable, because they share one join recomputation per refresh epoch.
func skewedDesigner(t testing.TB, opts mvpp.Options) *mvpp.Designer {
	t.Helper()
	cat := mvpp.NewCatalog()
	fail := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	fail(cat.AddTable("Fact", []mvpp.Column{
		{Name: "k", Type: mvpp.Int},
		{Name: "v", Type: mvpp.Int},
		{Name: "g1", Type: mvpp.Int},
		{Name: "g2", Type: mvpp.Int},
		{Name: "g3", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 200_000, Blocks: 20_000, UpdateFrequency: 1.65,
		DistinctValues: map[string]float64{
			"k": 10, "g1": 20, "g2": 20, "g3": 20,
		},
		IntRanges: map[string][2]int64{"v": {1, 1000}}}))
	fail(cat.AddTable("Dim", []mvpp.Column{
		{Name: "k", Type: mvpp.Int},
		{Name: "w", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 1_000, Blocks: 100, UpdateFrequency: 1.65,
		DistinctValues: map[string]float64{"k": 10},
		IntRanges:      map[string][2]int64{"w": {1, 1000}}}))

	d := mvpp.NewDesigner(cat, opts)
	for _, q := range []struct{ name, group string }{
		{"by_g1", "g1"}, {"by_g2", "g2"}, {"by_g3", "g3"},
	} {
		fail(d.AddQuery(q.name,
			`SELECT `+q.group+`, SUM(v) AS total FROM Fact, Dim
			 WHERE Fact.k = Dim.k GROUP BY `+q.group, 4))
	}
	return d
}

// TestSafeguardSelection (satellite of the observability PR): on the skewed
// workload the designer must fall back to a baseline strategy, record an
// ActionSafeguard step in the Figure 9 trace, and price the design at the
// baseline's total.
func TestSafeguardSelection(t *testing.T) {
	rec := mvpp.NewTraceRecorder(nil)
	d := skewedDesigner(t, mvpp.Options{Observer: rec})
	design, err := d.Design()
	if err != nil {
		t.Fatal(err)
	}

	// The safeguard must have replaced the greedy choice and logged it in
	// the selection trace.
	if !strings.Contains(design.Trace(), "safeguard") {
		t.Fatalf("selection trace has no safeguard step:\n%s", design.Trace())
	}

	// The observer saw it too: a design.safeguard event naming the winning
	// strategy and a non-zero substitution counter.
	tr := rec.Trace()
	events := tr.EventsOfKind(mvpp.EvSafeguard)
	if len(events) == 0 {
		t.Fatal("no design.safeguard events recorded")
	}
	ev := events[len(events)-1]
	if ev.Attrs["strategy"] != "all-query-results" {
		t.Errorf("winning strategy = %v, want all-query-results", ev.Attrs["strategy"])
	}
	if tr.Counters[mvpp.CtrSafeguardSubs] == 0 {
		t.Error("safeguard substitution counter is zero")
	}

	// The design's total must equal the baseline the safeguard picked:
	// materializing every query result, cheaper than leaving all virtual.
	_, _, allVirtual, err := design.EvaluateStrategy(nil)
	if err != nil {
		t.Fatal(err)
	}
	total := design.Costs().TotalCost
	if total >= allVirtual {
		t.Errorf("design total %g not below the all-virtual total %g", total, allVirtual)
	}
	if got := len(design.Views()); got != 3 {
		t.Errorf("materialized views = %d, want the 3 query results", got)
	}
}
