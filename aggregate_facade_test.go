package mvpp_test

import (
	"strings"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// aggregateDesigner builds a workload dominated by summary queries.
func aggregateDesigner(t *testing.T, opts mvpp.Options) *mvpp.Designer {
	t.Helper()
	d := mvpp.NewDesigner(paperCatalog(t), opts)
	queries := []mvpp.Query{
		{Name: "cityTotals", Frequency: 50, SQL: `SELECT Customer.city, SUM(quantity) AS total
			FROM Order, Customer WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`},
		{Name: "cityCounts", Frequency: 25, SQL: `SELECT Customer.city, COUNT(*) AS n
			FROM Order, Customer WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`},
		{Name: "detail", Frequency: 1, SQL: `SELECT Customer.name, quantity
			FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.Name, q.SQL, q.Frequency); err != nil {
			t.Fatalf("AddQuery(%s): %v", q.Name, err)
		}
	}
	return d
}

func TestAggregateDesignEndToEnd(t *testing.T) {
	design, err := aggregateDesigner(t, mvpp.Options{DiscountedMaintenance: true}).Design()
	if err != nil {
		t.Fatal(err)
	}
	views := design.Views()
	if len(views) == 0 {
		t.Fatal("no views materialized")
	}
	summary := false
	for _, v := range views {
		if strings.Contains(v.Operation, "γ") {
			summary = true
			if v.Rows > 50 {
				t.Errorf("summary view %s has %v rows, want ≤ 50 groups", v.Name, v.Rows)
			}
		}
	}
	if !summary {
		t.Errorf("no summary table in the design: %+v", views)
	}
	costs := design.Costs()
	if costs.TotalCost > costs.AllVirtualTotal/2 {
		t.Errorf("design %v should beat all-virtual %v decisively", costs.TotalCost, costs.AllVirtualTotal)
	}
	if !strings.Contains(design.Report(), "γ") {
		t.Error("report does not show the aggregation operator")
	}
}

func TestAggregateSimulation(t *testing.T) {
	design, err := aggregateDesigner(t, mvpp.Options{DiscountedMaintenance: true}).Design()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate verifies internally that rewritten plans return identical
	// rows — including the aggregate results.
	for q, s := range sim.PerQuery {
		if s.RewrittenReads > s.DirectReads {
			t.Errorf("%s slower with views: %d > %d", q, s.RewrittenReads, s.DirectReads)
		}
	}
	if sim.Speedup() <= 1 {
		t.Errorf("speedup = %.2f", sim.Speedup())
	}
	// The summary queries must produce grouped rows.
	if s := sim.PerQuery["cityTotals"]; s.Rows == 0 || s.Rows > 50 {
		t.Errorf("cityTotals rows = %d, want 1..50 groups", s.Rows)
	}
}

func TestDiscountedMaintenanceNoWorse(t *testing.T) {
	base, err := aggregateDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	disc, err := aggregateDesigner(t, mvpp.Options{DiscountedMaintenance: true}).Design()
	if err != nil {
		t.Fatal(err)
	}
	if disc.Costs().TotalCost > base.Costs().TotalCost+1e-6 {
		t.Errorf("discounted design %v worse than paper design %v",
			disc.Costs().TotalCost, base.Costs().TotalCost)
	}
}

func TestIndexedViewsOptionNoWorse(t *testing.T) {
	base, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := paperDesigner(t, mvpp.Options{IndexedViews: true}).Design()
	if err != nil {
		t.Fatal(err)
	}
	// Index pricing takes min(lookup, scan), so the designed total can only
	// improve or stay.
	if indexed.Costs().TotalCost > base.Costs().TotalCost+1e-6 {
		t.Errorf("indexed design %v worse than base %v",
			indexed.Costs().TotalCost, base.Costs().TotalCost)
	}
}
