package mvpp

import (
	"fmt"
	"sort"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/serve"
	"github.com/warehousekit/mvpp/internal/sqlparse"
	"github.com/warehousekit/mvpp/internal/viz"
)

// Design is the outcome of Designer.Design: a chosen MVPP and the set of
// views to materialize.
type Design struct {
	mvpp       *core.MVPP
	model      cost.Model
	selection  *core.SelectionResult
	candidates []*core.Candidate
	queries    []Query
	// bound holds the workload's parsed-and-bound queries (parallel to
	// queries), carried over from the designer so Simulate never re-parses.
	bound   []*sqlparse.Query
	catalog *Catalog
	// obsv is the designer's observer, carried over so Simulate can report
	// engine I/O. Nil when observability is off.
	obsv obs.Observer
	// policies maps view name → refresh-policy spec set via
	// SetRefreshPolicy; views not listed take the serve-time default.
	policies map[string]string
}

// View describes one recommended materialized view.
type View struct {
	// Name is the vertex name in the MVPP ("tmp2", "result1", ...).
	Name string
	// Operation is the view's top operation, human-readable.
	Operation string
	// Definition is the canonical relational-algebra definition.
	Definition string
	// Rows and Blocks are the estimated stored size.
	Rows, Blocks float64
	// MaintenanceCost is the frequency-weighted standalone refresh cost.
	MaintenanceCost float64
	// MaintenanceStrategy is how the design maintains the view:
	// "recompute" (the paper's policy) or "incremental" when
	// Options.Delta made delta propagation the cheaper plan.
	MaintenanceStrategy string
	// RefreshPolicy is when the view refreshes: "manual", "on-commit",
	// "scheduled:<interval>", or "streaming". Set with SetRefreshPolicy;
	// defaults to "on-commit".
	RefreshPolicy string
	// UsedBy lists the queries answered (fully or partly) from the view.
	UsedBy []string
}

// SetRefreshPolicy tags one of the design's materialized views with a
// refresh policy ("manual", "on-commit", "scheduled:<duration>",
// "streaming"). The policy travels with the design into NewServer, where
// ServeOptions.Policies can still override it per view.
func (d *Design) SetRefreshPolicy(view, policy string) error {
	if _, err := serve.ParsePolicy(policy); err != nil {
		return fmt.Errorf("mvpp: %w", err)
	}
	for _, v := range d.mvpp.Vertices {
		if v.Name == view && d.selection.Materialized[v.ID] {
			if d.policies == nil {
				d.policies = make(map[string]string)
			}
			d.policies[view] = policy
			return nil
		}
	}
	return fmt.Errorf("mvpp: %q is not one of the design's materialized views", view)
}

// RefreshPolicyOf returns the design-time refresh policy of a view —
// "on-commit" unless SetRefreshPolicy chose otherwise.
func (d *Design) RefreshPolicyOf(view string) string {
	if p, ok := d.policies[view]; ok && p != "" {
		return p
	}
	return "on-commit"
}

// Views returns the recommended materialized views, in MVPP order.
func (d *Design) Views() []View {
	var out []View
	for _, v := range d.mvpp.Vertices {
		if !d.selection.Materialized[v.ID] {
			continue
		}
		out = append(out, View{
			Name:                v.Name,
			Operation:           v.Op.Label(),
			Definition:          v.Op.Canonical(),
			Rows:                v.Est.Rows,
			Blocks:              v.Est.Blocks,
			MaintenanceCost:     d.selection.Costs.PerView[v.Name],
			MaintenanceStrategy: d.selection.Plans[v.Name].String(),
			RefreshPolicy:       d.RefreshPolicyOf(v.Name),
			UsedBy:              d.mvpp.QueriesUsing(v),
		})
	}
	return out
}

// CostSummary compares the design against the two extreme strategies.
type CostSummary struct {
	// QueryCost is the frequency-weighted query processing cost of the
	// design.
	QueryCost float64
	// MaintenanceCost is the frequency-weighted view maintenance cost.
	MaintenanceCost float64
	// TotalCost = QueryCost + MaintenanceCost.
	TotalCost float64
	// AllVirtualTotal is the total with nothing materialized.
	AllVirtualTotal float64
	// AllMaterializedTotal is the total with every query result stored.
	AllMaterializedTotal float64
	// PerQuery breaks QueryCost down by query.
	PerQuery map[string]float64
}

// Costs summarizes the design's predicted costs.
func (d *Design) Costs() CostSummary {
	virtual := d.mvpp.AllVirtual(d.model)
	allMat := d.mvpp.AllQueriesMaterialized(d.model)
	perQuery := make(map[string]float64, len(d.selection.Costs.PerQuery))
	for q, c := range d.selection.Costs.PerQuery {
		perQuery[q] = c
	}
	return CostSummary{
		QueryCost:            d.selection.Costs.Query,
		MaintenanceCost:      d.selection.Costs.Maintenance,
		TotalCost:            d.selection.Costs.Total,
		AllVirtualTotal:      virtual.Total,
		AllMaterializedTotal: allMat.Total,
		PerQuery:             perQuery,
	}
}

// EvaluateStrategy prices an arbitrary set of vertex names (e.g. a DBA's
// hand-picked alternative) under the design's MVPP and cost model.
func (d *Design) EvaluateStrategy(viewNames []string) (query, maintenance, total float64, err error) {
	c, err := d.mvpp.EvaluateNames(d.model, viewNames)
	if err != nil {
		return 0, 0, 0, err
	}
	return c.Query, c.Maintenance, c.Total, nil
}

// VertexNames lists all materialization candidates (non-leaf vertices) of
// the chosen MVPP, in topological order.
func (d *Design) VertexNames() []string {
	var out []string
	for _, v := range d.mvpp.InnerVertices() {
		out = append(out, v.Name)
	}
	return out
}

// Candidates reports how many distinct MVPPs were generated and evaluated.
func (d *Design) Candidates() int { return len(d.candidates) }

// Queries lists the workload's query names in the order they were added.
func (d *Design) Queries() []string {
	out := make([]string, len(d.queries))
	for i, q := range d.queries {
		out[i] = q.Name
	}
	return out
}

// ASCII renders the chosen MVPP with materialized vertices marked.
func (d *Design) ASCII() string {
	return viz.MVPPASCII(d.mvpp, d.selection.Materialized)
}

// DOT renders the chosen MVPP in Graphviz DOT.
func (d *Design) DOT() string {
	return viz.MVPPDOT(d.mvpp, d.selection.Materialized)
}

// Trace renders the selection heuristic's decision trace.
func (d *Design) Trace() string {
	return viz.TraceASCII(d.selection.Trace)
}

// ExplainQuery renders one query's plan inside the chosen MVPP, marking
// shared vertices and the design's materialized views.
func (d *Design) ExplainQuery(name string) (string, error) {
	out, err := viz.QueryTreeASCII(d.mvpp, name, d.selection.Materialized)
	if err != nil {
		return "", fmt.Errorf("mvpp: %w", err)
	}
	return out, nil
}

// Explain renders the named query's priced plan tree: every operator with
// its estimated output size, its per-operator §4.1 block cost, and — for
// vertices the design materializes — the view name, maintenance strategy
// and per-period maintenance cost. This is the design-time prediction; the
// serving layer's Server.Explain shows the same tree joined against
// measured actuals.
func (d *Design) Explain(name string) (string, error) {
	root, ok := d.mvpp.Roots[name]
	if !ok {
		return "", fmt.Errorf("mvpp: unknown query %q", name)
	}
	info := make(map[string]*core.Vertex, len(d.mvpp.Vertices))
	for _, v := range d.mvpp.Vertices {
		info[v.Key] = v
	}
	line := func(n algebra.Node) string {
		lbl := n.Label()
		v, ok := info[algebra.StructuralKey(n)]
		if !ok {
			return lbl
		}
		if v.IsLeaf() {
			return fmt.Sprintf("%s  — est %.0f rows / %.1f blocks", lbl, v.Est.Rows, v.Est.Blocks)
		}
		lbl = fmt.Sprintf("%s [%s]  — op %.1f blocks, est %.0f rows / %.1f blocks",
			lbl, v.Name, v.CaSelf, v.Est.Rows, v.Est.Blocks)
		if d.selection.Materialized[v.ID] {
			lbl += fmt.Sprintf("  ● materialized (%s, Cm %.1f)",
				d.selection.Plans[v.Name], d.selection.Costs.PerView[v.Name])
		}
		return lbl
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query %s  — Ca %.1f blocks under the design\n", name, d.selection.Costs.PerQuery[name])
	b.WriteString(line(root.Op))
	b.WriteByte('\n')
	var walk func(n algebra.Node, prefix string)
	walk = func(n algebra.Node, prefix string) {
		children := n.Children()
		for i, c := range children {
			branch, next := "├── ", prefix+"│   "
			if i == len(children)-1 {
				branch, next = "└── ", prefix+"    "
			}
			b.WriteString(prefix + branch + line(c) + "\n")
			walk(c, next)
		}
	}
	walk(root.Op, "")
	return b.String(), nil
}

// Report renders a complete human-readable design report.
func (d *Design) Report() string {
	var b strings.Builder
	costs := d.Costs()

	b.WriteString("MATERIALIZED VIEW DESIGN\n")
	b.WriteString("========================\n\n")
	b.WriteString(fmt.Sprintf("workload: %d queries, %d candidate MVPPs evaluated\n\n",
		len(d.queries), len(d.candidates)))

	views := d.Views()
	if len(views) == 0 {
		b.WriteString("recommendation: materialize nothing (all views virtual)\n\n")
	} else {
		b.WriteString("recommended materialized views:\n")
		for _, v := range views {
			strategy := ""
			if v.MaintenanceStrategy == core.MaintIncremental.String() {
				strategy = "; maintained incrementally"
			}
			if v.RefreshPolicy != "on-commit" {
				strategy += "; refresh " + v.RefreshPolicy
			}
			b.WriteString(fmt.Sprintf("  %-10s %-40s ~%s rows, %s blocks; used by %s%s\n",
				v.Name, v.Operation, viz.FormatCost(v.Rows), viz.FormatCost(v.Blocks),
				strings.Join(v.UsedBy, ","), strategy))
		}
		b.WriteString("\n")
	}

	b.WriteString("predicted cost per period (block accesses):\n")
	b.WriteString(fmt.Sprintf("  query processing:   %s\n", viz.FormatCost(costs.QueryCost)))
	b.WriteString(fmt.Sprintf("  view maintenance:   %s\n", viz.FormatCost(costs.MaintenanceCost)))
	b.WriteString(fmt.Sprintf("  total:              %s\n", viz.FormatCost(costs.TotalCost)))
	b.WriteString(fmt.Sprintf("  vs all-virtual:     %s (%.1f%% saved)\n",
		viz.FormatCost(costs.AllVirtualTotal), saving(costs.AllVirtualTotal, costs.TotalCost)))
	b.WriteString(fmt.Sprintf("  vs all-materialized:%s (%.1f%% saved)\n\n",
		viz.FormatCost(costs.AllMaterializedTotal), saving(costs.AllMaterializedTotal, costs.TotalCost)))

	b.WriteString("per-query cost (frequency-weighted):\n")
	var qnames []string
	for q := range costs.PerQuery {
		qnames = append(qnames, q)
	}
	sort.Strings(qnames)
	for _, q := range qnames {
		b.WriteString(fmt.Sprintf("  %-8s %s\n", q, viz.FormatCost(costs.PerQuery[q])))
	}
	b.WriteString("\nMVPP (● = materialized):\n")
	b.WriteString(d.ASCII())
	return b.String()
}

func saving(baseline, actual float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return 100 * (baseline - actual) / baseline
}
