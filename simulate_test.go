package mvpp_test

import (
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

func TestSimulateDesignSpeedsUpWorkload(t *testing.T) {
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.PerQuery) != 4 {
		t.Fatalf("per-query entries = %d", len(sim.PerQuery))
	}
	for q, s := range sim.PerQuery {
		if s.DirectReads <= 0 {
			t.Errorf("%s: direct reads = %d", q, s.DirectReads)
		}
		if s.RewrittenReads > s.DirectReads {
			t.Errorf("%s: views made execution slower: %d > %d", q, s.RewrittenReads, s.DirectReads)
		}
	}
	if sim.Speedup() <= 1 {
		t.Errorf("workload speedup = %.2f, want > 1", sim.Speedup())
	}
	if sim.RefreshIO <= 0 || sim.MaterializeIO <= 0 {
		t.Errorf("maintenance I/O not measured: refresh=%d materialize=%d", sim.RefreshIO, sim.MaterializeIO)
	}
	if sim.WeightedTotal != sim.WeightedRewritten+float64(sim.RefreshIO) {
		t.Error("WeightedTotal mismatch")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	a, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.WeightedDirect != b.WeightedDirect || a.RefreshIO != b.RefreshIO {
		t.Error("simulation not deterministic for equal seeds")
	}
	for q := range a.PerQuery {
		if a.PerQuery[q] != b.PerQuery[q] {
			t.Errorf("%s differs between runs", q)
		}
	}
}

func TestSimulateQueriesReturnRows(t *testing.T) {
	// The synthetic generator must produce data the selections actually
	// match ('LA' appears in Division.city etc.) so queries are non-trivial.
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, s := range sim.PerQuery {
		if s.Rows > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("only %d of 4 queries returned rows — generator domains do not match literals", nonEmpty)
	}
}
