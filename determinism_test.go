package mvpp_test

import (
	"bytes"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// TestDesignIsDeterministic guards against map-iteration nondeterminism in
// candidate generation, dedup, and selection: the same catalog and workload
// must produce byte-identical exported JSON on every run. Twenty rounds is
// enough to make any map-order dependence flake reliably.
func TestDesignIsDeterministic(t *testing.T) {
	exportOnce := func(delta *mvpp.DeltaOptions) []byte {
		d := randomDesigner(t, 3, mvpp.Options{Delta: delta})
		design, err := d.Design()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := design.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, delta := range []*mvpp.DeltaOptions{nil, {DefaultFraction: 0.02}} {
		first := exportOnce(delta)
		for i := 1; i < 20; i++ {
			if got := exportOnce(delta); !bytes.Equal(first, got) {
				t.Fatalf("run %d (delta=%v) produced different JSON\nfirst: %s\n  got: %s",
					i, delta != nil, first, got)
			}
		}
	}
}

// TestReportIsDeterministic does the same for the human-readable report,
// which walks vertices, views, and maintenance plans.
func TestReportIsDeterministic(t *testing.T) {
	reportOnce := func() string {
		d := updateHeavyDesigner(t, mvpp.Options{Delta: &mvpp.DeltaOptions{DefaultFraction: 0.01}})
		design, err := d.Design()
		if err != nil {
			t.Fatal(err)
		}
		return design.Report()
	}
	first := reportOnce()
	for i := 1; i < 20; i++ {
		if got := reportOnce(); got != first {
			t.Fatalf("run %d produced a different report\nfirst:\n%s\ngot:\n%s", i, first, got)
		}
	}
}
