module github.com/warehousekit/mvpp

go 1.22
