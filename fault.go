package mvpp

import (
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/serve"
)

// The fault-tolerance surface of the serving layer. The implementations
// live in internal/fault (the deterministic injector), internal/serve (the
// retry policy and circuit breaker), and internal/engine (the delta
// journal); these aliases expose them to library users, who configure
// ServeOptions and read back Server.Health.

// FaultInjector injects deterministic, seeded faults — error returns,
// latency spikes, panics — at named sites across the engine and the
// serving layer. Arm one via ServeOptions.Injector (chaos testing) and
// disarm it at runtime with Disarm. A nil injector is inert; production
// builds simply omit it.
type FaultInjector = fault.Injector

// FaultSite names one injection point; see the FaultSite* constants.
type FaultSite = fault.Site

// FaultRule is the fault mix drawn at one site: error, panic, and delay
// probabilities.
type FaultRule = fault.Rule

// FaultPlan maps sites to rules.
type FaultPlan = fault.Plan

// FaultCounts tallies the faults an injector has fired.
type FaultCounts = fault.Counts

// The named injection sites.
const (
	FaultSiteEngineExecute            = fault.SiteEngineExecute
	FaultSiteEngineRefresh            = fault.SiteEngineRefresh
	FaultSiteEngineIncrementalRefresh = fault.SiteEngineIncrementalRefresh
	FaultSiteEngineApplyDeltas        = fault.SiteEngineApplyDeltas
	FaultSiteServeWorker              = fault.SiteServeWorker
	FaultSiteServeEpoch               = fault.SiteServeEpoch
	FaultSiteJournalAppend            = fault.SiteJournalAppend
	FaultSiteJournalTruncate          = fault.SiteJournalTruncate
	FaultSiteSnapshotSegmentWrite     = fault.SiteSnapshotSegmentWrite
	FaultSiteSnapshotManifestWrite    = fault.SiteSnapshotManifestWrite
	FaultSiteSnapshotManifestRename   = fault.SiteSnapshotManifestRename
	FaultSiteSnapshotReplay           = fault.SiteSnapshotReplay
)

// ErrFaultInjected is the sentinel wrapped by every injected error;
// errors.Is(err, ErrFaultInjected) distinguishes chaos from real failures.
var ErrFaultInjected = fault.ErrInjected

// NewFaultInjector builds an injector whose draws are fully determined by
// the seed — the same seed and call sequence produce the same faults.
func NewFaultInjector(seed int64, plan FaultPlan) *FaultInjector {
	return fault.New(seed, plan)
}

// RetryPolicy bounds the serving layer's retry-with-exponential-backoff
// loop around every view-refresh step; see ServeOptions.Retry.
type RetryPolicy = serve.RetryPolicy

// BreakerPolicy configures the per-view circuit breaker; see
// ServeOptions.Breaker.
type BreakerPolicy = serve.BreakerPolicy

// BreakerState is a circuit breaker position (BreakerClosed, BreakerOpen,
// BreakerHalfOpen).
type BreakerState = serve.BreakerState

// Circuit breaker positions.
const (
	BreakerClosed   = serve.BreakerClosed
	BreakerOpen     = serve.BreakerOpen
	BreakerHalfOpen = serve.BreakerHalfOpen
)

// ViewHealth is one maintained view's fault-tolerance status, reported by
// Server.Health.
type ViewHealth = serve.ViewHealth

// ErrServerClosed reports an operation on a closed Server (query, ingest,
// or flush after — or racing with — Close).
var ErrServerClosed = serve.ErrClosed

// ErrQueryRejected reports that admission control turned a query away: the
// router's queue was full and the caller's context expired.
var ErrQueryRejected = serve.ErrRejected

// DeltaJournal is the write-ahead log for ingested deltas: batches are
// journaled before buffering, acknowledged once their maintenance epoch
// lands, and replayed when a server restarts over the same journal — no
// accepted delta is lost to a crash. See ServeOptions.Journal/JournalPath.
type DeltaJournal = engine.DeltaJournal

// DeltaRecord is one journaled delta batch.
type DeltaRecord = engine.DeltaRecord

// NewMemJournal builds an in-memory DeltaJournal — it survives rebuilding a
// Server over it, not a process exit. Tests and examples use it.
func NewMemJournal() *engine.MemJournal { return engine.NewMemJournal() }

// OpenFileJournal opens (or resumes) the crash-safe file-backed
// DeltaJournal at path: append-only line-JSON, fsynced per append/commit,
// tolerant of a torn final line.
func OpenFileJournal(path string) (*engine.FileJournal, error) {
	return engine.OpenFileJournal(path)
}
