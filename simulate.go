package mvpp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/obs"
)

// SimOptions configures Design.Simulate.
type SimOptions struct {
	// Scale shrinks (or grows) every table's cardinality relative to the
	// catalog statistics; 0 defaults to 0.01 so the nested-loop engine
	// stays fast. Key-like integer domains scale with the data; string and
	// bounded-integer domains do not (categorical attributes keep their
	// selectivities).
	Scale float64
	// Seed drives the deterministic data generator.
	Seed int64
	// DeltaFraction, when positive, appends one maintenance epoch's worth
	// of synthetic inserts — about DeltaFraction · rows per base table —
	// and measures maintaining the views by delta propagation
	// (IncrementalRefreshIO) for comparison with the full-recompute
	// RefreshIO.
	DeltaFraction float64
	// RowExec runs the simulation on the row-at-a-time reference executor
	// instead of the vectorized batch executor. Block I/O is identical
	// either way (the differential suite pins that); only wall-clock
	// differs, so this exists for the row-vs-batch benchmarks.
	RowExec bool
}

// QuerySim is the measured execution of one query with and without the
// design's materialized views.
type QuerySim struct {
	// DirectReads is the block reads of running the query from base tables.
	DirectReads int64
	// RewrittenReads is the block reads after rewriting over the
	// materialized views.
	RewrittenReads int64
	// Rows is the result cardinality (identical either way — checked).
	Rows int
}

// Simulation reports a design executed on synthetic data in the embedded
// block-counting engine.
type Simulation struct {
	// PerQuery maps query name to its measured execution.
	PerQuery map[string]QuerySim
	// MaterializeIO is the one-time I/O of building the views.
	MaterializeIO int64
	// RefreshIO is the I/O of one maintenance epoch (refreshing every view
	// from base tables).
	RefreshIO int64
	// DeltaRows and IncrementalRefreshIO report the delta epoch run when
	// SimOptions.DeltaFraction > 0: how many rows were inserted across the
	// base tables and the measured I/O of maintaining every view by delta
	// propagation (recomputation for views that are not incrementally
	// maintainable).
	DeltaRows            int
	IncrementalRefreshIO int64
	// WeightedDirect and WeightedRewritten are Σ fq · reads for the two
	// execution modes; WeightedTotal adds one refresh epoch to the
	// rewritten cost, mirroring the paper's total-cost objective.
	WeightedDirect, WeightedRewritten, WeightedTotal float64
}

// Speedup is the ratio of direct to rewritten frequency-weighted query
// I/O — how much faster the workload runs with the design's views.
func (s *Simulation) Speedup() float64 {
	if s.WeightedRewritten == 0 {
		return math.Inf(1)
	}
	return s.WeightedDirect / s.WeightedRewritten
}

// Simulate generates synthetic data consistent with the catalog statistics,
// executes every workload query directly and through the design's
// materialized views, and measures actual block I/O. It validates the
// design end-to-end: results must match between the two execution modes,
// and the measured I/O shows the real effect of materialization.
func (d *Design) Simulate(opts SimOptions) (*Simulation, error) {
	if d.catalog == nil {
		return nil, fmt.Errorf("mvpp: design has no catalog attached")
	}
	scale := opts.Scale
	if scale <= 0 {
		scale = 0.01
	}
	db, err := d.buildSyntheticDB(scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.RowExec {
		db.SetExecMode(engine.ExecRow)
	}
	ssp := obs.Start(d.obsv, "simulate", obs.Float("scale", scale))
	defer obs.End(ssp)
	db.SetObserver(obs.From(ssp))

	sim := &Simulation{PerQuery: make(map[string]QuerySim, len(d.queries))}

	// Direct execution from base tables.
	type direct struct {
		reads int64
		rows  int
	}
	directByQuery := make(map[string]direct, len(d.queries))
	for _, q := range d.queries {
		root := d.mvpp.Roots[q.Name]
		res, err := db.Execute(root.Op)
		if err != nil {
			return nil, fmt.Errorf("mvpp: simulating %s: %w", q.Name, err)
		}
		directByQuery[q.Name] = direct{reads: res.TotalReads(), rows: res.Table.NumRows()}
		sim.WeightedDirect += q.Frequency * float64(res.TotalReads())
	}

	// Materialize the design's views (largest last so views-over-views
	// compose if present; topological order guarantees that).
	db.Counter.Reset()
	for _, v := range d.mvpp.Vertices {
		if !d.selection.Materialized[v.ID] {
			continue
		}
		if _, err := db.Materialize(v.Name, v.Op); err != nil {
			return nil, fmt.Errorf("mvpp: materializing %s: %w", v.Name, err)
		}
	}
	sim.MaterializeIO = db.Counter.Reads() + db.Counter.Writes()

	// Rewritten execution.
	for _, q := range d.queries {
		root := d.mvpp.Roots[q.Name]
		plan := db.RewriteWithViews(root.Op)
		res, err := db.Execute(plan)
		if err != nil {
			return nil, fmt.Errorf("mvpp: simulating %s with views: %w", q.Name, err)
		}
		dd := directByQuery[q.Name]
		if res.Table.NumRows() != dd.rows {
			return nil, fmt.Errorf("mvpp: %s returned %d rows with views, %d without — rewrite bug",
				q.Name, res.Table.NumRows(), dd.rows)
		}
		sim.PerQuery[q.Name] = QuerySim{
			DirectReads:    dd.reads,
			RewrittenReads: res.TotalReads(),
			Rows:           dd.rows,
		}
		sim.WeightedRewritten += q.Frequency * float64(res.TotalReads())
	}

	// One maintenance epoch.
	db.Counter.Reset()
	if _, err := db.RefreshAll(); err != nil {
		return nil, err
	}
	sim.RefreshIO = db.Counter.Reads() + db.Counter.Writes()
	sim.WeightedTotal = sim.WeightedRewritten + float64(sim.RefreshIO)

	// Delta epoch: insert a fraction of each table's rows, maintain the
	// views incrementally, and validate that the maintained views still
	// answer every query correctly.
	if opts.DeltaFraction > 0 {
		n, err := d.insertSyntheticDeltas(db, scale, opts.DeltaFraction, opts.Seed+1)
		if err != nil {
			return nil, err
		}
		sim.DeltaRows = n
		db.Counter.Reset()
		if _, err := db.IncrementalRefreshAll(); err != nil {
			return nil, err
		}
		sim.IncrementalRefreshIO = db.Counter.Reads() + db.Counter.Writes()
		for _, q := range d.queries {
			root := d.mvpp.Roots[q.Name]
			direct, err := db.Execute(root.Op)
			if err != nil {
				return nil, fmt.Errorf("mvpp: re-running %s after deltas: %w", q.Name, err)
			}
			rewritten, err := db.Execute(db.RewriteWithViews(root.Op))
			if err != nil {
				return nil, fmt.Errorf("mvpp: re-running %s over maintained views: %w", q.Name, err)
			}
			if direct.Table.NumRows() != rewritten.Table.NumRows() {
				return nil, fmt.Errorf("mvpp: %s returned %d rows over maintained views, %d from base tables — incremental maintenance bug",
					q.Name, rewritten.Table.NumRows(), direct.Table.NumRows())
			}
		}
	}
	return sim, nil
}

// insertSyntheticDeltas stages fraction·rows pending inserts per base
// table, generated by the same per-column generators as the initial data
// (row indices continue past the existing rows, so key-like columns keep
// extending their domain).
func (d *Design) insertSyntheticDeltas(db *engine.DB, scale, fraction float64, seed int64) (int, error) {
	rows, total, err := d.syntheticDeltaRows(db, scale, fraction, seed)
	if err != nil {
		return 0, err
	}
	for _, name := range d.catalog.inner.Relations() {
		if len(rows[name]) == 0 {
			continue
		}
		if err := db.InsertDelta(name, rows[name]...); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// syntheticDeltaRows generates one delta epoch's rows per base table —
// about fraction·rows·scale rows each, from the same per-column generators
// as the initial data — without applying them anywhere. Simulate feeds them
// to InsertDelta; the serving layer's InjectDeltas feeds them to the
// maintenance scheduler.
func (d *Design) syntheticDeltaRows(db *engine.DB, scale, fraction float64, seed int64) (map[string][][]algebra.Value, int, error) {
	literals := d.collectLiterals()
	out := make(map[string][][]algebra.Value)
	total := 0
	for ti, name := range d.catalog.inner.Relations() {
		rel, err := d.catalog.inner.Relation(name)
		if err != nil {
			return nil, 0, err
		}
		t, err := db.Table(name)
		if err != nil {
			return nil, 0, err
		}
		n := int(math.Max(1, math.Round(rel.Rows*scale*fraction)))
		base := t.NumRows()
		r := rand.New(rand.NewSource(seed + 7919*int64(ti)))
		gens := make([]func(int) algebra.Value, rel.Schema.Len())
		for ci, col := range rel.Schema.Columns {
			gens[ci] = columnGenerator(col, rel.Attrs[col.Name], literals[name+"."+col.Name], base+n, scale, r)
		}
		rows := make([][]algebra.Value, 0, n)
		for j := 0; j < n; j++ {
			row := make([]algebra.Value, len(gens))
			for ci, g := range gens {
				row[ci] = g(base + j)
			}
			rows = append(rows, row)
		}
		out[name] = rows
		total += n
	}
	return out, total, nil
}

// buildSyntheticDB generates data for every catalog table.
func (d *Design) buildSyntheticDB(scale float64, seed int64) (*engine.DB, error) {
	db := engine.NewDB(engine.DefaultBlockRows)
	literals := d.collectLiterals()
	for ti, name := range d.catalog.inner.Relations() {
		rel, err := d.catalog.inner.Relation(name)
		if err != nil {
			return nil, err
		}
		rows := int(math.Max(1, math.Round(rel.Rows*scale)))
		blockRows := engine.DefaultBlockRows
		if rel.Blocks > 0 {
			if w := int(math.Round(rel.Rows / rel.Blocks)); w >= 1 {
				blockRows = w
			}
		}
		t, err := db.CreateSizedTable(name, rel.Schema, blockRows)
		if err != nil {
			return nil, err
		}
		r := rand.New(rand.NewSource(seed + int64(ti)))
		gens := make([]func(int) algebra.Value, rel.Schema.Len())
		for ci, col := range rel.Schema.Columns {
			gens[ci] = columnGenerator(col, rel.Attrs[col.Name], literals[name+"."+col.Name], rows, scale, r)
		}
		for i := 0; i < rows; i++ {
			row := make([]algebra.Value, len(gens))
			for ci, g := range gens {
				row[ci] = g(i)
			}
			if err := t.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// collectLiterals gathers the comparison literals each column is tested
// against in the workload, so generated domains contain them.
func (d *Design) collectLiterals() map[string][]algebra.Value {
	out := make(map[string][]algebra.Value)
	var fromPred func(p algebra.Predicate)
	fromPred = func(p algebra.Predicate) {
		switch v := p.(type) {
		case *algebra.Comparison:
			if v.Left.IsColumn && !v.Right.IsColumn {
				key := v.Left.Col.String()
				out[key] = append(out[key], v.Right.Lit)
			}
		case *algebra.And:
			for _, q := range v.Preds {
				fromPred(q)
			}
		case *algebra.Or:
			for _, q := range v.Preds {
				fromPred(q)
			}
		case *algebra.Not:
			fromPred(v.Pred)
		}
	}
	for _, bound := range d.bound {
		for _, p := range bound.Selections {
			fromPred(p)
		}
	}
	for key, vals := range out {
		sort.Slice(vals, func(i, j int) bool { return vals[i].String() < vals[j].String() })
		dedup := vals[:0]
		for i, v := range vals {
			if i == 0 || v.String() != vals[i-1].String() {
				dedup = append(dedup, v)
			}
		}
		out[key] = dedup
	}
	return out
}

// columnGenerator builds a per-column value generator consistent with the
// catalog statistics and the workload's literals.
func columnGenerator(col algebra.Column, stats catalog.AttrStats, lits []algebra.Value, rows int, scale float64, r *rand.Rand) func(int) algebra.Value {
	switch col.Type {
	case algebra.TypeString:
		// Categorical: domain size does not scale. Literals occupy the
		// first slots of the value pool.
		n := int(stats.DistinctValues)
		if n < len(lits)+1 {
			n = len(lits) + 1
		}
		pool := make([]algebra.Value, n)
		for i := range pool {
			if i < len(lits) {
				pool[i] = lits[i]
			} else {
				pool[i] = algebra.StringVal(fmt.Sprintf("%s-v%04d", col.Name, i))
			}
		}
		return func(int) algebra.Value { return pool[r.Intn(len(pool))] }
	case algebra.TypeDate:
		lo, hi := int64(9496), int64(9861) // 1996 by default
		if loF, ok := numericBound(stats.Min); ok {
			lo = int64(loF)
		}
		if hiF, ok := numericBound(stats.Max); ok {
			hi = int64(hiF)
		}
		if hi <= lo {
			hi = lo + 1
		}
		return func(int) algebra.Value { return algebra.DateVal(lo + r.Int63n(hi-lo+1)) }
	case algebra.TypeFloat:
		return func(int) algebra.Value { return algebra.FloatVal(r.Float64() * 1000) }
	default: // TypeInt
		// Bounded domains (explicit ranges) stay fixed; key-like domains
		// scale with the data.
		if loF, okLo := numericBound(stats.Min); okLo {
			if hiF, okHi := numericBound(stats.Max); okHi && hiF > loF {
				lo, hi := int64(loF), int64(hiF)
				return func(int) algebra.Value { return algebra.IntVal(lo + r.Int63n(hi-lo+1)) }
			}
		}
		n := int64(math.Max(1, math.Round(stats.DistinctValues*scale)))
		if stats.DistinctValues == 0 {
			n = int64(rows)
		}
		if n >= int64(rows) {
			// Dense key: one distinct value per row.
			return func(i int) algebra.Value { return algebra.IntVal(int64(i)) }
		}
		return func(int) algebra.Value { return algebra.IntVal(r.Int63n(n)) }
	}
}

func numericBound(v algebra.Value) (float64, bool) {
	switch v.Kind {
	case algebra.TypeInt, algebra.TypeDate:
		return float64(v.Int), true
	case algebra.TypeFloat:
		return v.Float, true
	default:
		return 0, false
	}
}
