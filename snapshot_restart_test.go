package mvpp_test

import (
	"context"
	"path/filepath"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// snapshotFingerprint answers every design query and returns its sorted
// rows — the bit-identity witness for crash-restart verification.
func snapshotFingerprint(t *testing.T, design *mvpp.Design, srv *mvpp.Server) map[string][]string {
	t.Helper()
	ctx := context.Background()
	out := make(map[string][]string)
	for _, q := range design.Queries() {
		res, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		out[q] = resultRows(res)
	}
	return out
}

func requireSameFingerprint(t *testing.T, got, want map[string][]string) {
	t.Helper()
	for q, w := range want {
		g := got[q]
		if len(g) != len(w) {
			t.Fatalf("%s: %d rows, want %d", q, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s row %d: %q, want %q", q, i, g[i], w[i])
			}
		}
	}
}

func TestSnapshotColdThenWarmBoot(t *testing.T) {
	dir := t.TempDir()
	opts := mvpp.ServeOptions{
		Seed:        21,
		SnapshotDir: filepath.Join(dir, "snaps"),
		JournalPath: filepath.Join(dir, "deltas.journal"),
	}

	design, first := paperServer(t, opts)
	ss := first.SnapshotStats()
	if !ss.Configured || ss.Recovery == nil || !ss.Recovery.Cold {
		t.Fatalf("first boot should be a cold recovery, got %+v", ss.Recovery)
	}
	if _, err := first.InjectDeltas(0.05); err != nil {
		t.Fatal(err)
	}
	if err := first.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Generation != 1 || res.Bytes <= 0 {
		t.Fatalf("checkpoint = %+v, want generation 1 with bytes", res)
	}
	want := snapshotFingerprint(t, design, first)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	_, second := paperServer(t, opts)
	ss = second.SnapshotStats()
	if ss.Recovery == nil || ss.Recovery.Cold {
		t.Fatalf("second boot should restore the snapshot, got %+v", ss.Recovery)
	}
	if ss.Recovery.ViewsRestored == 0 || ss.Recovery.BaseRestored == 0 {
		t.Fatalf("nothing restored: %+v", ss.Recovery)
	}
	if got := second.Stats().ReplayedDeltaRows; got != 0 {
		t.Errorf("replayed %d rows past a fresh checkpoint, want 0", got)
	}
	if err := second.Flush(); err != nil {
		t.Fatal(err)
	}
	requireSameFingerprint(t, snapshotFingerprint(t, design, second), want)
}

// TestSnapshotCrashRestartVerify is the chaos crash-restart-verify cycle:
// a checkpoint is killed at each injected crash point, the server
// restarts, and the recovered warehouse must answer every query
// bit-identically with zero lost deltas.
func TestSnapshotCrashRestartVerify(t *testing.T) {
	cases := []struct {
		name string
		site mvpp.FaultSite
		// checkpointErrs: the injected Checkpoint call surfaces an error.
		checkpointErrs bool
		// committed: despite the crash the generation landed (crash after
		// the manifest rename point of no return), so the restarted server
		// recovers generation 2 and replays nothing.
		committed bool
	}{
		{name: "mid-segment write", site: mvpp.FaultSiteSnapshotSegmentWrite, checkpointErrs: true},
		{name: "pre-manifest rename", site: mvpp.FaultSiteSnapshotManifestWrite, checkpointErrs: true},
		{name: "post-manifest rename", site: mvpp.FaultSiteSnapshotManifestRename, checkpointErrs: true, committed: true},
		{name: "mid-journal compaction", site: mvpp.FaultSiteJournalTruncate, committed: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := mvpp.ServeOptions{
				Seed:        21,
				SnapshotDir: filepath.Join(dir, "snaps"),
				JournalPath: filepath.Join(dir, "deltas.journal"),
			}

			// Boot A: lay down one good generation, then die cleanly.
			design, a := paperServer(t, opts)
			if _, err := a.InjectDeltas(0.05); err != nil {
				t.Fatal(err)
			}
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}

			// Boot B: ingest more deltas, then crash at the injected point
			// of the next checkpoint. Everything the injector skips after
			// the error is exactly what a kill -9 would never run.
			armed := opts
			armed.Injector = mvpp.NewFaultInjector(1, mvpp.FaultPlan{
				tc.site: {ErrProb: 1},
			})
			_, b := paperServer(t, armed)
			injected, err := b.InjectDeltas(0.05)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}
			want := snapshotFingerprint(t, design, b)
			_, cerr := b.Checkpoint()
			if tc.checkpointErrs && cerr == nil {
				t.Fatal("injected crash point did not surface from Checkpoint")
			}
			if !tc.checkpointErrs {
				if cerr != nil {
					t.Fatal(cerr)
				}
				if tc.site == mvpp.FaultSiteJournalTruncate {
					if got := b.SnapshotStats().TruncateFailures; got == 0 {
						t.Error("crashed journal compaction not counted")
					}
				}
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}

			// Boot C: clean restart over the crash debris.
			_, c := paperServer(t, opts)
			ss := c.SnapshotStats()
			if ss.Recovery == nil || ss.Recovery.Cold {
				t.Fatalf("restart after crash went cold: %+v", ss.Recovery)
			}
			wantGen := uint64(1)
			if tc.committed {
				wantGen = 2
			}
			if ss.Recovery.Generation != wantGen {
				t.Errorf("recovered generation %d, want %d", ss.Recovery.Generation, wantGen)
			}
			// Zero lost deltas: everything B ingested past the surviving
			// watermark is replayed; a committed generation 2 already
			// contains them and replays nothing.
			replayed := c.Stats().ReplayedDeltaRows
			if tc.committed {
				if replayed != 0 {
					t.Errorf("replayed %d rows despite a committed checkpoint", replayed)
				}
			} else if replayed != int64(injected) {
				t.Errorf("replayed %d rows, want %d (boot B's uncheckpointed deltas)", replayed, injected)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			requireSameFingerprint(t, snapshotFingerprint(t, design, c), want)
		})
	}
}

// TestSnapshotDropViewDoesNotResurrect exercises the public path: dropping
// a view through advice application must scrub its segments so a later
// restart recomputes instead of restoring stale rows.
func TestSnapshotDropViewColdStartStats(t *testing.T) {
	dir := t.TempDir()
	opts := mvpp.ServeOptions{
		Seed:        21,
		SnapshotDir: filepath.Join(dir, "snaps"),
		JournalPath: filepath.Join(dir, "deltas.journal"),
	}
	design, srv := paperServer(t, opts)
	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ss := srv.SnapshotStats()
	if ss.Checkpoints != 1 || len(ss.Views) == 0 {
		t.Fatalf("stats after checkpoint = %+v", ss)
	}
	for name, info := range ss.Views {
		if info.Bytes <= 0 || info.SnapshotAt.IsZero() {
			t.Errorf("view %s snapshot info = %+v", name, info)
		}
	}
	want := snapshotFingerprint(t, design, srv)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	_, reborn := paperServer(t, opts)
	requireSameFingerprint(t, snapshotFingerprint(t, design, reborn), want)
	rs := reborn.SnapshotStats().Recovery
	if rs == nil || rs.Cold || rs.ViewsRecomputed != 0 {
		t.Fatalf("warm boot stats = %+v, want all views restored", rs)
	}
}
