package mvpp

import (
	"encoding/json"
	"io"
)

// ExportJSON is the machine-readable form of a design: the MVPP DAG with
// its annotations, the chosen materialized set, and the cost summary.
// It is stable output for downstream tooling (dashboards, CI checks on
// predicted costs, diffing two designs).
type ExportJSON struct {
	Queries  []ExportQuery  `json:"queries"`
	Vertices []ExportVertex `json:"vertices"`
	Costs    ExportCosts    `json:"costs"`
}

// ExportQuery is one workload entry.
type ExportQuery struct {
	Name      string  `json:"name"`
	SQL       string  `json:"sql"`
	Frequency float64 `json:"frequency"`
	// Cost is the query's frequency-weighted predicted cost under the
	// design.
	Cost float64 `json:"cost"`
}

// ExportVertex is one MVPP vertex.
type ExportVertex struct {
	Name      string   `json:"name"`
	Operation string   `json:"operation"`
	Kind      string   `json:"kind"` // "base", "intermediate", "query"
	Inputs    []string `json:"inputs,omitempty"`
	Queries   []string `json:"queries,omitempty"` // queries using the vertex
	Rows      float64  `json:"rows"`
	Blocks    float64  `json:"blocks"`
	// ComputeCost is the paper's Ca(v); zero for base relations.
	ComputeCost float64 `json:"computeCost"`
	Weight      float64 `json:"weight"`
	// Materialized marks the design's chosen views.
	Materialized bool `json:"materialized"`
	// MaintenanceStrategy is "recompute" or "incremental" for
	// materialized vertices; empty otherwise.
	MaintenanceStrategy string `json:"maintenanceStrategy,omitempty"`
	// RefreshPolicy is the design-time refresh policy ("manual",
	// "on-commit", "scheduled:<interval>", "streaming") for materialized
	// vertices; empty otherwise.
	RefreshPolicy string `json:"refreshPolicy,omitempty"`
}

// ExportCosts is the design's §4.1 cost breakdown.
type ExportCosts struct {
	Query                float64 `json:"query"`
	Maintenance          float64 `json:"maintenance"`
	Total                float64 `json:"total"`
	AllVirtualTotal      float64 `json:"allVirtualTotal"`
	AllMaterializedTotal float64 `json:"allMaterializedTotal"`
}

// Export builds the machine-readable form of the design.
func (d *Design) Export() *ExportJSON {
	costs := d.Costs()
	out := &ExportJSON{
		Costs: ExportCosts{
			Query:                costs.QueryCost,
			Maintenance:          costs.MaintenanceCost,
			Total:                costs.TotalCost,
			AllVirtualTotal:      costs.AllVirtualTotal,
			AllMaterializedTotal: costs.AllMaterializedTotal,
		},
	}
	for _, q := range d.queries {
		out.Queries = append(out.Queries, ExportQuery{
			Name:      q.Name,
			SQL:       q.SQL,
			Frequency: q.Frequency,
			Cost:      costs.PerQuery[q.Name],
		})
	}
	for _, v := range d.mvpp.Vertices {
		ev := ExportVertex{
			Name:         v.Name,
			Operation:    v.Op.Label(),
			Rows:         v.Est.Rows,
			Blocks:       v.Est.Blocks,
			ComputeCost:  v.Ca,
			Weight:       v.Weight,
			Materialized: d.selection.Materialized[v.ID],
		}
		if ev.Materialized {
			ev.MaintenanceStrategy = d.selection.Plans[v.Name].String()
			ev.RefreshPolicy = d.RefreshPolicyOf(v.Name)
		}
		switch {
		case v.IsLeaf():
			ev.Kind = "base"
		case v.IsRoot():
			ev.Kind = "query"
		default:
			ev.Kind = "intermediate"
		}
		for _, in := range v.In {
			ev.Inputs = append(ev.Inputs, in.Name)
		}
		if !v.IsLeaf() {
			ev.Queries = d.mvpp.QueriesUsing(v)
		}
		out.Vertices = append(out.Vertices, ev)
	}
	return out
}

// WriteJSON writes the exported design as indented JSON.
func (d *Design) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Export())
}
