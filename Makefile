GO ?= go

# Static analysis is pinned so every machine runs the same checks; the
# tier-1 target skips it gracefully where the binary is not installed.
STATICCHECK_VERSION ?= 2025.1
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)

.PHONY: all fmt vet staticcheck build test race bench check tier1 telemetry-smoke fuzz-smoke chaos-restart chaos-policies obscheck

all: check

# Fail when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Runs staticcheck@$(STATICCHECK_VERSION) when installed; skips (with a
# notice) otherwise, so tier-1 works on minimal containers without
# downloading toolchains.
staticcheck:
ifdef STATICCHECK
	$(STATICCHECK) -checks inherit ./...
else
	@echo "staticcheck not installed; skipping (pin: staticcheck@$(STATICCHECK_VERSION))"
endif

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate.
check: fmt vet build test race

# Observability-taxonomy lint: every Ev*/Ctr*/Gauge* constant in
# internal/obs must be documented (by its wire value) in DESIGN.md's event
# and metric tables. New instrumentation without docs fails tier-1.
obscheck:
	$(GO) run ./scripts/obscheck

# Telemetry smoke: start mvserve with the admin plane on a loopback port,
# let it self-scrape /metrics, /healthz, and /traces (mvserve validates the
# exposition format itself), and check the scrape report. No curl needed,
# and the OS-assigned port avoids collisions in CI.
telemetry-smoke:
	@out="$$($(GO) run ./cmd/mvserve -catalog cmd/mvserve/testdata/catalog.json \
		-workload cmd/mvserve/testdata/workload.json \
		-clients 2 -requests 20 -epochs 1 -scale 0.005 \
		-telemetry 127.0.0.1:0)" || { echo "$$out"; exit 1; }; \
	for want in "telemetry: /metrics valid Prometheus exposition" \
		"telemetry: /healthz ok" "telemetry: /traces holds"; do \
		echo "$$out" | grep -q "$$want" || { \
			echo "telemetry smoke: missing \"$$want\""; echo "$$out"; exit 1; }; \
	done; \
	echo "telemetry smoke: ok"

# Short fuzzing pass over the batch executor's predicate kernels and the
# join-key encoding equivalence. A few seconds per target is enough to
# shake loose encoding mismatches in CI; long sessions run the same
# targets with a bigger -fuzztime by hand.
fuzz-smoke:
	$(GO) test ./internal/engine -run '^$$' -fuzz FuzzBatchSelectPredicate -fuzztime 5s
	$(GO) test ./internal/engine -run '^$$' -fuzz FuzzJoinKeyEncoding -fuzztime 5s

# Chaos crash-restart-verify: kill a checkpoint at each injected crash
# point (mid-segment write, either side of the manifest rename, mid-journal
# compaction), restart over the debris, and require bit-identical query
# answers with zero lost deltas — under the race detector, since recovery
# races the snapshot loop.
chaos-restart:
	$(GO) test -race -count=1 -run 'TestSnapshotCrashRestartVerify|TestFileJournalTruncateCrashLosesNothing' . ./internal/engine

# Mixed-policy chaos: the crash-restart-verify cycle with the full refresh
# policy spectrum live (manual, on-commit, scheduled, streaming), deltas
# arriving through both the direct and the CDC streaming path, plus the
# backpressure and drain-on-close contracts of the change feed — all under
# the race detector.
chaos-policies:
	$(GO) test -race -count=1 -run 'TestChaosMixedPolicyRecovery|TestPolicyTelemetryEndToEnd|TestStream' . ./internal/serve

# The tier-1 verification script (what CI runs on every change), with the
# race detector included so the concurrent serving layer stays honest,
# static analysis (vet always, staticcheck when installed) in front, a
# short fuzz pass over the batch executor, the chaos crash-restart and
# mixed-policy cycles, and a live telemetry scrape at the end.
tier1: build vet staticcheck obscheck test race fuzz-smoke chaos-restart chaos-policies telemetry-smoke

# Write the Design() benchmark baseline consumed by regression checks.
bench:
	$(GO) run ./scripts/benchjson -out BENCH_design.json
	@cat BENCH_design.json
