GO ?= go

.PHONY: all fmt vet build test race bench check tier1

all: check

# Fail when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate.
check: fmt vet build test race

# The tier-1 verification script (what CI runs on every change), with the
# race detector included so the concurrent serving layer stays honest.
tier1: build test race

# Write the Design() benchmark baseline consumed by regression checks.
bench:
	$(GO) run ./scripts/benchjson -out BENCH_design.json
	@cat BENCH_design.json
