GO ?= go

# Static analysis is pinned so every machine runs the same checks; the
# tier-1 target skips it gracefully where the binary is not installed.
STATICCHECK_VERSION ?= 2025.1
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)

.PHONY: all fmt vet staticcheck build test race bench check tier1

all: check

# Fail when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Runs staticcheck@$(STATICCHECK_VERSION) when installed; skips (with a
# notice) otherwise, so tier-1 works on minimal containers without
# downloading toolchains.
staticcheck:
ifdef STATICCHECK
	$(STATICCHECK) -checks inherit ./...
else
	@echo "staticcheck not installed; skipping (pin: staticcheck@$(STATICCHECK_VERSION))"
endif

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate.
check: fmt vet build test race

# The tier-1 verification script (what CI runs on every change), with the
# race detector included so the concurrent serving layer stays honest and
# static analysis (vet always, staticcheck when installed) in front.
tier1: build vet staticcheck test race

# Write the Design() benchmark baseline consumed by regression checks.
bench:
	$(GO) run ./scripts/benchjson -out BENCH_design.json
	@cat BENCH_design.json
